"""Multi-resource scheduler with EASY backfilling (Algorithm 1).

Event-driven simulation of the paper's Algorithm 1: a global queue
ordered by the policy R1 (FCFS in the paper), EASY backfilling ordered
by the policy R2 (also FCFS in the paper), and a pluggable
``Machine(j, i, M)`` assignment strategy.  When the head job's assigned
machine cannot fit it, the job is reserved at that machine's earliest
feasible time (the EASY "shadow" time) and later queue entries may
backfill — on other machines freely (they cannot delay the
reservation), and on the reserved machine only if they finish before
the shadow time.  Walltime estimates are the observed runtimes (perfect
estimates), as in the paper.

Fast engine
-----------
Both the fault-free and the failure-aware simulation run on one event
engine whose hot paths are incremental instead of recomputed:

* **Queue** — entries are ``(R1 key, job_id, job)`` triples kept in
  sorted order; R1/R2 keys are computed *once* per job at admission and
  new arrivals are merged with :func:`bisect.insort` (O(log n)
  comparisons per arrival) instead of re-sorting the whole queue.
  Lazily-deleted entries advance behind a head index with periodic
  compaction, preserving the seed implementation's backfill-window
  layout exactly.
* **Backfill window** — the bounded near-head window is decorated with
  the precomputed R2 keys, so the per-event window sort makes no Python
  key calls.  When the strategy declares ``stateless_assign`` and no
  machine has a free node, the scan is skipped outright, and during a
  scan candidates larger than the largest free block are filtered
  before the strategy is consulted — both no-ops by construction (no
  candidate could have started), so schedules are unchanged.
* **Machines** — :class:`~repro.sched.machines.MachineState` keeps its
  running allocations in a sorted list, so the EASY shadow time is a
  prefix walk with no per-event sort.

The engine is *schedule-bit-identical* to the frozen seed
implementation in :mod:`repro.sched._reference` — pinned by
``tests/test_sched_equivalence.py`` across strategies, queue policies,
arrival patterns, and fault profiles.  Policy keys must therefore be
total orders (all built-in policies tie-break on job id) and pure
functions of the job, which the policies module already guarantees.

Failure-aware mode: passing a :class:`repro.resilience.FaultInjector`
(``faults=``) extends the event loop with node failures, node
recoveries, and job crashes as first-class events alongside starts and
finishes.  Killed jobs are resubmitted under a
:class:`repro.resilience.RetryPolicy` (bounded attempts, backoff,
optional checkpoint/restart); nodes go offline and recover via the
:class:`~repro.sched.machines.MachineState` availability transitions.
With no injector the fault branches never execute, so fault support is
zero-cost (bit-identical output) when off.
"""

from __future__ import annotations

import heapq
from bisect import bisect, insort
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.telemetry import flightrec
from repro.sched.job import Job
from repro.sched.machines import ClusterState
from repro.sched.policies import FCFSPolicy

__all__ = ["Scheduler", "ScheduleResult", "SimStats"]


@dataclass
class ScheduleResult:
    """Per-job placements and timing from one simulation run."""

    job_ids: np.ndarray
    machines: list[str]
    submit_times: np.ndarray
    start_times: np.ndarray
    end_times: np.ndarray
    runtimes: np.ndarray
    strategy_name: str
    backfilled: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def num_jobs(self) -> int:
        return len(self.job_ids)

    @property
    def wait_times(self) -> np.ndarray:
        return self.start_times - self.submit_times


@dataclass(frozen=True)
class SimStats:
    """Per-run event-loop counters (``Scheduler.last_run_stats``).

    Frozen so a consumer can hold a reference across runs without it
    mutating underneath, and schema'd so the telemetry counters and
    ``benchmarks/test_perf_sched.py`` cannot silently drift: the key set
    is pinned by test, and dict-style access (``stats["sched_events"]``)
    is kept for existing callers.
    """

    wakeups: int = 0
    starts: int = 0
    backfilled: int = 0
    retries: int = 0

    #: The pinned key schema, in canonical order.
    KEYS = ("wakeups", "starts", "backfilled", "retries", "sched_events")

    @property
    def sched_events(self) -> int:
        """Wakeups + starts: the events/sec throughput numerator."""
        return self.wakeups + self.starts

    def __getitem__(self, key: str) -> int:
        if key not in self.KEYS:
            raise KeyError(key)
        return getattr(self, key)

    def as_dict(self) -> dict[str, int]:
        return {key: getattr(self, key) for key in self.KEYS}


class Scheduler:
    """Multi-resource scheduler: Algorithm 1 with pluggable R1/R2.

    Parameters
    ----------
    strategy:
        Machine-assignment strategy (``Machine(j, i, M)``).
    cluster:
        Machine pool; defaults to the Table I clusters.
    backfill:
        Enable EASY backfilling (Algorithm 1 lines 9-16); disabling it
        gives plain FCFS for the ablation study.
    conservative:
        Approximate conservative backfilling: a candidate may backfill
        (on *any* machine) only if it completes before the head job's
        reservation time, so no backfilled job outlives the current
        reservation horizon.  Stricter and fairer than EASY, at lower
        utilization.
    backfill_depth:
        Maximum queue entries scanned per backfill pass (production
        schedulers bound this; keeps the simulation O(depth) per event).
    queue_policy:
        R1 — queue ordering policy (default FCFS, the paper's choice).
    backfill_policy:
        R2 — backfill candidate ordering policy (default FCFS).
    walltime_factor:
        Multiplier on runtimes when used as *walltime estimates* in
        backfill feasibility checks.  1.0 (default) reproduces the
        paper's perfect estimates; real users over-request 2-10x, which
        makes backfilling conservative about jobs that would actually
        have fit.  Actual execution always uses the true runtime.
    trace:
        Record a scheduling event log in ``result.extra["events"]``:
        tuples ``(time, kind, job_id, machine)`` with kind in
        {"start", "backfill_start", "reserve"} (plus {"crash",
        "node_fail", "node_recover", "requeue", "give_up"} in
        failure-aware mode).  Off by default (the log grows with the
        workload).
    faults:
        A :class:`repro.resilience.FaultInjector`.  When given (and not
        null), the simulation runs the failure-aware event loop; None
        (default) runs the fault-free loop.
    retry:
        :class:`repro.resilience.RetryPolicy` governing resubmission of
        killed jobs; defaults to unlimited attempts with exponential
        backoff.  Only consulted in failure-aware mode.

    Attributes
    ----------
    last_run_stats:
        Filled after each :meth:`run`: a :class:`SimStats` with
        ``wakeups`` (time advances), ``starts`` (job starts, including
        retries), ``backfilled``, ``retries``, and the derived
        ``sched_events`` (wakeups + starts — the numerator of the
        events/sec throughput metric in
        ``benchmarks/test_perf_sched.py``).
    """

    def __init__(
        self,
        strategy,
        cluster: ClusterState | None = None,
        backfill: bool = True,
        conservative: bool = False,
        backfill_depth: int = 128,
        queue_policy=None,
        backfill_policy=None,
        walltime_factor: float = 1.0,
        trace: bool = False,
        faults=None,
        retry=None,
    ):
        if walltime_factor < 1.0:
            raise ValueError("walltime_factor must be >= 1 (users cannot "
                             "under-request without being killed)")
        self.strategy = strategy
        self.cluster = cluster if cluster is not None else ClusterState()
        self.backfill = backfill
        self.conservative = conservative
        self.backfill_depth = backfill_depth
        self.queue_policy = queue_policy or FCFSPolicy()
        self.backfill_policy = backfill_policy or FCFSPolicy()
        self.walltime_factor = walltime_factor
        self.trace = trace
        self.faults = faults
        self.retry = retry
        self.last_run_stats: SimStats = SimStats()

    # ------------------------------------------------------------------
    def run(self, jobs: list[Job]) -> ScheduleResult:
        """Simulate scheduling of *jobs*; returns per-job outcomes."""
        if not jobs:
            raise ValueError("no jobs to schedule")
        # One boundary event per run (not per job): post-mortem context
        # at ring-friendly volume, and the disabled-mode branch rides
        # the scheduler perf gate in benchmarks/test_perf_telemetry.py.
        flightrec.record(
            "sched-run", jobs=len(jobs),
            strategy=getattr(self.strategy, "name", "custom"),
        )
        with telemetry.span(
            "sched.run",
            strategy=getattr(self.strategy, "name", "custom"),
            jobs=len(jobs),
            faulty=self.faults is not None,
        ):
            if self.faults is not None:
                result = self._run_faulty(jobs)
            else:
                result = self._run_reliable(jobs)
        # Counters are fed once per run from the loop's own tallies, so
        # the event loop itself carries zero telemetry cost.
        if telemetry.metrics_enabled():
            stats = self.last_run_stats
            telemetry.counter("sched.runs").inc()
            telemetry.counter("sched.wakeups").inc(stats.wakeups)
            telemetry.counter("sched.starts").inc(stats.starts)
            telemetry.counter("sched.backfilled").inc(stats.backfilled)
            telemetry.counter("sched.retries").inc(stats.retries)
            telemetry.histogram(
                "sched.jobs_per_run", telemetry.SIZE_BUCKETS
            ).observe(len(jobs))
        return result

    # -- shared engine pieces ------------------------------------------
    def _prepare(self, jobs: list[Job]):
        """Sort arrivals and precompute the per-job R1/R2 policy keys.

        Keys are pure functions of the job (a documented policy
        contract), so computing them once at startup instead of on
        every sort is a pure strength reduction.  When the R1 and R2
        keys agree for every job (``same_order``, e.g. the default
        FCFS/FCFS pairing) the queue is already in backfill order and
        the per-event window decoration + sort can be skipped outright.
        """
        arrivals = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        r1_key = self.queue_policy.key
        r2_key = self.backfill_policy.key
        r1k = {j.job_id: r1_key(j) for j in jobs}
        r2k = {j.job_id: r2_key(j) for j in jobs}
        return arrivals, r1k, r2k, r1k == r2k

    # ------------------------------------------------------------------
    def _run_reliable(self, jobs: list[Job]) -> ScheduleResult:
        """The fault-free loop (the paper's perfect world)."""
        arrivals, r1k, r2k, same_order = self._prepare(jobs)
        arrival_idx = 0
        cluster = self.cluster
        strategy = self.strategy
        assign = strategy.assign
        release = getattr(strategy, "release", None)
        stateless = getattr(strategy, "stateless_assign", False)
        machines = cluster.machines
        machine_list = list(machines.values())
        max_total = max(m.total_nodes for m in machine_list)
        backfill = self.backfill
        conservative = self.conservative
        depth = self.backfill_depth
        window_span = 4 * depth
        walltime_factor = self.walltime_factor
        trace = self.trace
        # A schedule pass may be elided (see `can_skip` below) only when
        # the strategy has no call-order-dependent state — the protocol
        # promises stateful strategies the reference call sequence — and
        # tracing is off (a skipped pass would drop its "reserve" event).
        skippable = stateless and not trace

        n = len(jobs)
        # Queue of (R1 key, job_id, job) triples in sorted order from
        # `head_idx` on; keys are total so the job object is never
        # compared.  `interior_stale` counts lazily-deleted entries at
        # or beyond head_idx (backfilled jobs whose queue copy remains
        # until the next compaction).  Invariant: every such entry lies
        # inside ``queue[head_idx : head_idx + 1 + window_span]`` —
        # backfills only happen inside the window, the head cursor never
        # moves backwards, and arrivals are only inserted after
        # compaction — so compaction is an O(window) splice instead of a
        # whole-queue copy.
        queue: list[tuple] = []
        head_idx = 0
        interior_stale = 0
        machines_out: dict[int, str] = {}
        start_out: dict[int, float] = {}
        scheduled: set[int] = set()
        started = 0
        backfilled = 0
        now = 0.0
        wakeups = 0
        events: list[tuple[float, str, int, str]] = []
        # `_running` lists mutate in place (start/release/cancel never
        # rebind them), so the pairs bound here stay valid for the whole
        # run and `r[0][0]` peeks replace two method calls per machine
        # per wakeup.
        running_of = [(m, m._running) for m in machine_list]
        # True while the last schedule pass provably cannot decide
        # differently: it left the head blocked (or the live queue
        # empty), and since then no completion freed nodes and no
        # arrival landed inside the head's backfill window.  Free nodes
        # can only shrink between releases and the shadow-feasibility
        # test is monotone in `now`, so every candidate the pass
        # rejected stays rejected — the rerun is a no-op and is elided.
        can_skip = False

        def start_job(job: Job, machine_name: str) -> None:
            nonlocal started
            runtime = job.runtime_on(machine_name)
            machines[machine_name].start(job.nodes_required, now + runtime)
            machines_out[job.job_id] = machine_name
            start_out[job.job_id] = now
            scheduled.add(job.job_id)
            started += 1
            if release is not None:
                release(job.job_id)

        while len(start_out) < n:
            # -- admit due arrivals ------------------------------------
            if arrival_idx < n and arrivals[arrival_idx].submit_time <= now:
                if interior_stale:
                    # Splice the stale entries out of the window region
                    # (equivalent to the reference engine's whole-queue
                    # compaction by the invariant above).
                    hi = head_idx + 1 + window_span
                    queue[head_idx:hi] = [
                        e for e in queue[head_idx:hi]
                        if e[1] not in scheduled
                    ]
                    interior_stale = 0
                    can_skip = False  # live entries shifted into the window
                win_end = head_idx + 1 + window_span
                qlen = len(queue)
                while (arrival_idx < n
                       and arrivals[arrival_idx].submit_time <= now):
                    job = arrivals[arrival_idx]
                    entry = (r1k[job.job_id], job.job_id, job)
                    if qlen and entry < queue[-1]:
                        pos = bisect(queue, entry, head_idx)
                        queue.insert(pos, entry)
                    else:
                        # Monotone R1 keys (FCFS): the whole arrival
                        # batch lands as O(1) tail appends.
                        pos = qlen
                        queue.append(entry)
                    qlen += 1
                    if pos < win_end:
                        can_skip = False
                    arrival_idx += 1

            # -- schedule pass -----------------------------------------
            if not can_skip:
                while True:
                    while (head_idx < len(queue)
                           and queue[head_idx][1] in scheduled):
                        # Entries skipped here are exactly the backfilled
                        # jobs counted in interior_stale (head starts bump
                        # head_idx directly, below).
                        head_idx += 1
                        interior_stale -= 1
                    if head_idx > 64 and head_idx * 2 > len(queue):
                        del queue[:head_idx]
                        head_idx = 0
                    if head_idx >= len(queue):
                        can_skip = skippable
                        break
                    head = queue[head_idx][2]
                    m_name = assign(head, started, cluster)
                    machine = machines[m_name]
                    if not machine.can_ever_fit(head.nodes_required):
                        raise RuntimeError(
                            f"job {head.job_id} needs {head.nodes_required} "
                            f"nodes; {m_name} has {machine.total_nodes}"
                        )
                    if machine.can_fit(head.nodes_required):
                        start_job(head, m_name)
                        if trace:
                            events.append((now, "start", head.job_id, m_name))
                        head_idx += 1
                        continue

                    if not backfill or head_idx + 1 >= len(queue):
                        can_skip = skippable
                        break
                    total_free = sum(m.free_nodes for m in machine_list)
                    if stateless and total_free == 0 and not trace:
                        # No machine can start anything and the strategy
                        # has no call-order-dependent state, so the whole
                        # backfill pass would be a no-op; skip it.
                        can_skip = skippable
                        break
                    # EASY: reserve head at its machine's shadow time,
                    # then scan a bounded near-head window in R2 order.
                    shadow = machine.shadow_time(head.nodes_required, now)
                    if trace:
                        events.append((shadow, "reserve", head.job_id,
                                       m_name))
                    if same_order:
                        # Queue order *is* R2 order: scan the raw window
                        # in place, counting live entries up to `depth`
                        # — identical to filter-then-truncate because
                        # live job ids are unique in the queue (a
                        # candidate this scan starts is never seen again
                        # later in the same scan).  When no entry is
                        # stale the bound degrades to the next `depth`
                        # raw entries and the membership test is skipped.
                        lo = head_idx + 1
                        check_stale = interior_stale > 0
                        hi = min(len(queue),
                                 lo + (window_span if check_stale
                                       else depth))
                        cands = None
                    else:
                        if interior_stale:
                            window = [
                                (r2k[e[1]], e[1], e[2])
                                for e in
                                queue[head_idx + 1:
                                      head_idx + 1 + window_span]
                                if e[1] not in scheduled
                            ]
                        else:
                            window = [
                                (r2k[e[1]], e[1], e[2])
                                for e in
                                queue[head_idx + 1:
                                      head_idx + 1 + window_span]
                            ]
                        window.sort()
                        cands = [e[2] for e in window[:depth]]
                        lo, hi, check_stale = 0, len(cands), False
                    max_free = max(m.free_nodes for m in machine_list)
                    taken = 0
                    for i in range(lo, hi):
                        if taken == depth:
                            break
                        if cands is None:
                            e = queue[i]
                            if check_stale and e[1] in scheduled:
                                continue
                            cand = e[2]
                        else:
                            cand = cands[i]
                        taken += 1
                        need = cand.nodes_required
                        if (stateless and need > max_free
                                and need <= max_total):
                            # No machine has a block this large free
                            # right now, so the candidate cannot start;
                            # skipping the (stateless) strategy call
                            # changes nothing.
                            continue
                        c_name = assign(cand, started, cluster)
                        c_machine = machines[c_name]
                        if (c_machine.total_nodes
                                - c_machine.offline_nodes < need):
                            continue  # can_ever_fit, inlined
                        if (c_machine.state != "up"
                                or c_machine.free_nodes < need):
                            continue  # can_fit, inlined
                        # Feasibility uses the (possibly inflated)
                        # estimate; actual execution below uses the true
                        # runtime.
                        finishes = now + (cand.runtime_on(c_name)
                                          * walltime_factor)
                        if c_name == m_name and finishes > shadow:
                            # Would delay the head's reservation (the
                            # head consumes every node freed up to the
                            # shadow time by construction).
                            continue
                        if conservative and finishes > shadow:
                            # Conservative mode: nothing may outlive the
                            # reservation horizon, even on other
                            # machines.
                            continue
                        start_job(cand, c_name)
                        backfilled += 1
                        interior_stale += 1
                        if trace:
                            events.append((now, "backfill_start",
                                           cand.job_id, c_name))
                        total_free -= need
                        if stateless and total_free <= 0:
                            break
                        max_free = max(m.free_nodes for m in machine_list)
                    can_skip = skippable
                    break  # head still blocked; wait for an event

            if len(start_out) >= n:
                break
            # Advance time to the next event (peeks inlined: the
            # `_running` lists are the live objects).
            next_done = None
            for m, r in running_of:
                if r:
                    t = r[0][0]
                    if next_done is None or t < next_done:
                        next_done = t
            if arrival_idx < n:
                next_arrival = arrivals[arrival_idx].submit_time
                if next_done is None or next_arrival < next_done:
                    next_done = next_arrival
            if next_done is None:
                raise RuntimeError("deadlock: no events but jobs unscheduled")
            if next_done > now:
                now = next_done
            for m, r in running_of:
                if r and r[0][0] <= now:
                    # Bulk-release every allocation due by `now`; freed
                    # nodes invalidate the no-op-pass proof.
                    m.release_until(now)
                    can_skip = False
            wakeups += 1

        self.last_run_stats = SimStats(
            wakeups=wakeups, starts=started, backfilled=backfilled
        )
        by_id = {j.job_id: j for j in jobs}
        ids = np.array(sorted(start_out), dtype=np.int64)
        starts = np.array([start_out[i] for i in ids])
        placed = [machines_out[i] for i in ids]
        runtimes = np.array(
            [by_id[i].runtime_on(machines_out[i]) for i in ids]
        )
        submits = np.array([by_id[i].submit_time for i in ids])
        return ScheduleResult(
            job_ids=ids,
            machines=placed,
            submit_times=submits,
            start_times=starts,
            end_times=starts + runtimes,
            runtimes=runtimes,
            strategy_name=getattr(self.strategy, "name", "custom"),
            backfilled=backfilled,
            extra={"events": events} if trace else {},
        )

    # ------------------------------------------------------------------
    def _run_faulty(self, jobs: list[Job]) -> ScheduleResult:
        """Failure-aware event loop: the paper's experiment in a hostile
        world.

        Same scheduling logic (Algorithm 1 + strategy + EASY backfill),
        extended with four event kinds: ``finish``, ``crash`` (job-level
        fault), ``fail``/``recover`` (node-level fault), and ``requeue``
        (retry becoming eligible).  With a null injector this loop makes
        identical scheduling decisions to :meth:`_run_reliable` — pinned
        by a test — because job starts, finishes, and backfill
        feasibility compute the exact same values when no fault event
        ever fires.
        """
        from repro.resilience.retry import RetryPolicy

        injector = self.faults
        retry = self.retry if self.retry is not None else RetryPolicy()
        arrivals, r1k, r2k, same_order = self._prepare(jobs)
        arrival_idx = 0
        cluster = self.cluster
        strategy = self.strategy
        assign = strategy.assign
        release = getattr(strategy, "release", None)
        stateless = getattr(strategy, "stateless_assign", False)
        machines = cluster.machines
        machine_list = list(machines.values())
        max_total = max(m.total_nodes for m in machine_list)
        backfill = self.backfill
        conservative = self.conservative
        depth = self.backfill_depth
        window_span = 4 * depth
        walltime_factor = self.walltime_factor
        trace = self.trace

        n = len(jobs)
        by_id = {j.job_id: j for j in jobs}
        queue: list[tuple] = []
        head_idx = 0
        interior_stale = 0
        scheduled: set[int] = set()
        started = 0
        backfilled = 0
        now = 0.0
        wakeups = 0
        events: list[tuple[float, str, int, str]] = []

        # Resilience bookkeeping.
        attempts: dict[int, int] = {}        # job -> attempts started
        progress: dict[int, float] = {}      # job -> work fraction done
        running: dict[int, dict] = {}        # job -> live attempt info
        finished: dict[int, tuple[str, float, float]] = {}
        failed_perm: set[int] = set()
        wasted = 0.0                         # node-seconds of lost work
        node_failures = 0
        job_crashes = 0
        preemptions = 0                      # kills caused by node failures
        retries = 0

        # Event heap: (time, tiebreak, kind, a, b).
        evq: list[tuple[float, int, str, int | str, int]] = []
        ev_seq = 0

        def push(time: float, kind: str, a, b=0) -> None:
            nonlocal ev_seq
            heapq.heappush(evq, (time, ev_seq, kind, a, b))
            ev_seq += 1

        for m_name in cluster.names:
            gap = injector.next_failure_gap(m_name)
            if gap is not None:
                push(gap, "fail", m_name)

        def remaining(jid: int) -> float:
            return max(0.0, 1.0 - progress.get(jid, 0.0))

        def compact_window() -> None:
            """Splice lazily-deleted entries out of the window region.

            Equivalent to the reference engine's whole-queue compaction:
            every stale entry lies inside ``queue[head_idx : head_idx +
            1 + window_span]`` (backfills only happen inside the window,
            the head cursor never moves backwards, and insertions only
            happen right after compaction).
            """
            nonlocal interior_stale
            hi = head_idx + 1 + window_span
            queue[head_idx:hi] = [
                e for e in queue[head_idx:hi] if e[1] not in scheduled
            ]
            interior_stale = 0

        def admit_arrivals() -> None:
            nonlocal arrival_idx
            if (arrival_idx >= n
                    or arrivals[arrival_idx].submit_time > now):
                return
            if interior_stale:
                compact_window()
            while (arrival_idx < n
                   and arrivals[arrival_idx].submit_time <= now):
                job = arrivals[arrival_idx]
                entry = (r1k[job.job_id], job.job_id, job)
                if queue and entry < queue[-1]:
                    insort(queue, entry, head_idx)
                else:
                    # Monotone R1 keys (FCFS): O(1) tail append.
                    queue.append(entry)
                arrival_idx += 1

        def start_job(job: Job, machine_name: str) -> None:
            nonlocal started
            jid = job.job_id
            runtime = job.runtime_on(machine_name) * remaining(jid)
            end = now + runtime
            seq = machines[machine_name].start(job.nodes_required, end)
            attempt = attempts.get(jid, 0) + 1
            attempts[jid] = attempt
            running[jid] = {
                "machine": machine_name, "start": now, "end": end,
                "nodes": job.nodes_required, "seq": seq, "attempt": attempt,
            }
            scheduled.add(jid)
            started += 1
            push(end, "finish", jid, attempt)
            crash_at = injector.crash_offset(jid, attempt, runtime)
            if crash_at is not None:
                push(now + crash_at, "crash", jid, attempt)

        def resolve(jid: int) -> None:
            """A job is permanently done (finished or given up); its
            sticky strategy-cache entries can be evicted."""
            if release is not None:
                release(jid)

        def kill(jid: int, cause: str) -> None:
            """Terminate a running attempt and arrange its retry."""
            nonlocal wasted, retries
            info = running.pop(jid)
            machines[info["machine"]].cancel(info["seq"])
            job = by_id[jid]
            elapsed = now - info["start"]
            if retry.checkpoint:
                progress[jid] = min(
                    1.0,
                    progress.get(jid, 0.0)
                    + elapsed / job.runtime_on(info["machine"]),
                )
            else:
                wasted += info["nodes"] * elapsed
            if trace:
                events.append((now, cause, jid, info["machine"]))
            if retry.gives_up(attempts[jid]):
                failed_perm.add(jid)  # stays in `scheduled`: never requeued
                if trace:
                    events.append((now, "give_up", jid, info["machine"]))
                resolve(jid)
                return
            retries += 1
            push(now + retry.delay(attempts[jid], jid), "requeue", jid)

        def handle_requeue(jid: int) -> None:
            # Purge any stale queue copy (a backfilled job stays in the
            # window until compaction) *before* clearing the scheduled
            # mark, then re-admit under R1 order among the live suffix.
            if interior_stale:
                compact_window()
            scheduled.discard(jid)
            insort(queue, (r1k[jid], jid, by_id[jid]), head_idx)
            if trace:
                events.append((now, "requeue", jid, ""))

        def handle_node_failure(m_name: str) -> None:
            nonlocal node_failures, preemptions
            machine = machines[m_name]
            gap = injector.next_failure_gap(m_name)
            if gap is not None:
                push(now + gap, "fail", m_name)
            if machine.usable_nodes == 0:
                return  # already fully down; nothing left to break
            if machine.free_nodes == 0:
                # Every usable node is busy: the failing node takes its
                # job down with it.  Deterministic victim: the running
                # job with the most remaining work (latest end time).
                victim = max(
                    (jid for jid, info in running.items()
                     if info["machine"] == m_name),
                    key=lambda jid: (running[jid]["end"], jid),
                )
                preemptions += 1
                kill(victim, "node_kill")
            machine.take_offline(1)
            node_failures += 1
            if trace:
                events.append((now, "node_fail", -1, m_name))
            push(now + injector.repair_duration(m_name), "recover", m_name)

        def schedule_pass() -> None:
            nonlocal head_idx, interior_stale, backfilled
            while True:
                while head_idx < len(queue) and queue[head_idx][1] in scheduled:
                    head_idx += 1
                    interior_stale -= 1
                if head_idx > 64 and head_idx * 2 > len(queue):
                    del queue[:head_idx]
                    head_idx = 0
                if head_idx >= len(queue):
                    return
                head = queue[head_idx][2]
                try:
                    m_name = assign(head, started, cluster)
                except RuntimeError:
                    # Strategy found no usable machine.  Transient when
                    # caused by offline nodes; a configuration error when
                    # the job exceeds every machine outright.
                    if not any(m.total_nodes >= head.nodes_required
                               for m in machine_list):
                        raise
                    return
                machine = machines[m_name]
                if head.nodes_required > machine.total_nodes:
                    raise RuntimeError(
                        f"job {head.job_id} needs {head.nodes_required} "
                        f"nodes; {m_name} has {machine.total_nodes}"
                    )
                if machine.can_fit(head.nodes_required):
                    start_job(head, m_name)
                    if trace:
                        events.append((now, "start", head.job_id, m_name))
                    head_idx += 1
                    continue

                if not backfill or head_idx + 1 >= len(queue):
                    return
                total_free = sum(m.free_nodes for m in machine_list)
                if stateless and total_free == 0 and not trace:
                    return
                try:
                    shadow = machine.shadow_time(head.nodes_required, now)
                except RuntimeError:
                    return  # offline nodes block the reservation; wait
                if trace:
                    events.append((shadow, "reserve", head.job_id, m_name))
                if same_order:
                    # Scan the raw window in place, counting live
                    # entries up to `depth` — identical to
                    # filter-then-truncate because live job ids are
                    # unique in the queue.
                    lo = head_idx + 1
                    check_stale = interior_stale > 0
                    hi = min(len(queue),
                             lo + (window_span if check_stale else depth))
                    cands = None
                else:
                    if interior_stale:
                        window = [
                            (r2k[e[1]], e[1], e[2])
                            for e in
                            queue[head_idx + 1:
                                  head_idx + 1 + window_span]
                            if e[1] not in scheduled
                        ]
                    else:
                        window = [
                            (r2k[e[1]], e[1], e[2])
                            for e in
                            queue[head_idx + 1:
                                  head_idx + 1 + window_span]
                        ]
                    window.sort()
                    cands = [e[2] for e in window[:depth]]
                    lo, hi, check_stale = 0, len(cands), False
                max_free = max(m.free_nodes for m in machine_list)
                taken = 0
                for i in range(lo, hi):
                    if taken == depth:
                        break
                    if cands is None:
                        e = queue[i]
                        if check_stale and e[1] in scheduled:
                            continue
                        cand = e[2]
                    else:
                        cand = cands[i]
                    taken += 1
                    need = cand.nodes_required
                    if stateless and need > max_free and need <= max_total:
                        continue
                    try:
                        c_name = assign(cand, started, cluster)
                    except RuntimeError:
                        continue
                    c_machine = machines[c_name]
                    if not c_machine.can_ever_fit(need):
                        continue
                    if not c_machine.can_fit(need):
                        continue
                    finishes = now + (cand.runtime_on(c_name)
                                      * remaining(cand.job_id)
                                      * walltime_factor)
                    if c_name == m_name and finishes > shadow:
                        continue
                    if conservative and finishes > shadow:
                        continue
                    start_job(cand, c_name)
                    backfilled += 1
                    interior_stale += 1
                    if trace:
                        events.append((now, "backfill_start",
                                       cand.job_id, c_name))
                    total_free -= need
                    if stateless and total_free <= 0:
                        break
                    max_free = max(m.free_nodes for m in machine_list)
                return  # head still blocked; wait for an event

        while len(finished) + len(failed_perm) < n:
            admit_arrivals()
            schedule_pass()
            if len(finished) + len(failed_perm) >= n:
                break

            wake_times = []
            if arrival_idx < n:
                wake_times.append(arrivals[arrival_idx].submit_time)
            if evq:
                wake_times.append(evq[0][0])
            if not wake_times:
                raise RuntimeError("deadlock: no events but jobs unresolved")
            now = max(now, min(wake_times))
            for m in machine_list:
                r = m._running
                if r and r[0][0] <= now:
                    m.release_until(now)
            wakeups += 1

            while evq and evq[0][0] <= now:
                _, _, kind, a, b = heapq.heappop(evq)
                if kind == "finish":
                    info = running.get(a)
                    if info is not None and info["attempt"] == b:
                        running.pop(a)
                        finished[a] = (
                            info["machine"], info["start"], info["end"]
                        )
                        resolve(a)
                elif kind == "crash":
                    info = running.get(a)
                    if info is not None and info["attempt"] == b:
                        job_crashes += 1
                        kill(a, "crash")
                elif kind == "fail":
                    handle_node_failure(a)
                elif kind == "recover":
                    machines[a].bring_online(1)
                    if trace:
                        events.append((now, "node_recover", -1, a))
                elif kind == "requeue":
                    handle_requeue(a)

        self.last_run_stats = SimStats(
            wakeups=wakeups, starts=started, backfilled=backfilled,
            retries=retries,
        )
        ids = np.array(sorted(finished), dtype=np.int64)
        placed = [finished[i][0] for i in ids]
        starts = np.array([finished[i][1] for i in ids])
        ends = np.array([finished[i][2] for i in ids])
        submits = np.array([by_id[i].submit_time for i in ids])
        extra = {
            "faults": {
                "profile": injector.profile.name,
                "node_failures": node_failures,
                "job_crashes": job_crashes,
                "preemptions": preemptions,
                "retries": retries,
                "failed_jobs": sorted(failed_perm),
                "wasted_node_seconds": float(wasted),
                "attempts": {
                    int(j): int(k) for j, k in attempts.items() if k > 1
                },
            }
        }
        if trace:
            extra["events"] = events
        return ScheduleResult(
            job_ids=ids,
            machines=placed,
            submit_times=submits,
            start_times=starts,
            end_times=ends,
            runtimes=ends - starts,
            strategy_name=getattr(self.strategy, "name", "custom"),
            backfilled=backfilled,
            extra=extra,
        )
