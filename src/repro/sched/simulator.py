"""Multi-resource scheduler with EASY backfilling (Algorithm 1).

Event-driven simulation of the paper's Algorithm 1: a global queue
ordered by the policy R1 (FCFS in the paper), EASY backfilling ordered
by the policy R2 (also FCFS in the paper), and a pluggable
``Machine(j, i, M)`` assignment strategy.  When the head job's assigned
machine cannot fit it, the job is reserved at that machine's earliest
feasible time (the EASY "shadow" time) and later queue entries may
backfill — on other machines freely (they cannot delay the
reservation), and on the reserved machine only if they finish before
the shadow time.  Walltime estimates are the observed runtimes (perfect
estimates), as in the paper.

Implementation notes: the queue is a Python list kept sorted by
``R1.key`` with an advancing head index (lazy compaction), so FCFS runs
in amortized O(1) per event; non-FCFS policies re-sort only when new
arrivals land (timsort on nearly-sorted data).  The backfill pass sorts
a bounded near-head window by ``R2.key`` rather than the whole queue,
which matches how production schedulers bound backfill cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sched.job import Job
from repro.sched.machines import ClusterState
from repro.sched.policies import FCFSPolicy

__all__ = ["Scheduler", "ScheduleResult"]


@dataclass
class ScheduleResult:
    """Per-job placements and timing from one simulation run."""

    job_ids: np.ndarray
    machines: list[str]
    submit_times: np.ndarray
    start_times: np.ndarray
    end_times: np.ndarray
    runtimes: np.ndarray
    strategy_name: str
    backfilled: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def num_jobs(self) -> int:
        return len(self.job_ids)

    @property
    def wait_times(self) -> np.ndarray:
        return self.start_times - self.submit_times


class Scheduler:
    """Multi-resource scheduler: Algorithm 1 with pluggable R1/R2.

    Parameters
    ----------
    strategy:
        Machine-assignment strategy (``Machine(j, i, M)``).
    cluster:
        Machine pool; defaults to the Table I clusters.
    backfill:
        Enable EASY backfilling (Algorithm 1 lines 9-16); disabling it
        gives plain FCFS for the ablation study.
    conservative:
        Approximate conservative backfilling: a candidate may backfill
        (on *any* machine) only if it completes before the head job's
        reservation time, so no backfilled job outlives the current
        reservation horizon.  Stricter and fairer than EASY, at lower
        utilization.
    backfill_depth:
        Maximum queue entries scanned per backfill pass (production
        schedulers bound this; keeps the simulation O(depth) per event).
    queue_policy:
        R1 — queue ordering policy (default FCFS, the paper's choice).
    backfill_policy:
        R2 — backfill candidate ordering policy (default FCFS).
    walltime_factor:
        Multiplier on runtimes when used as *walltime estimates* in
        backfill feasibility checks.  1.0 (default) reproduces the
        paper's perfect estimates; real users over-request 2-10x, which
        makes backfilling conservative about jobs that would actually
        have fit.  Actual execution always uses the true runtime.
    trace:
        Record a scheduling event log in ``result.extra["events"]``:
        tuples ``(time, kind, job_id, machine)`` with kind in
        {"start", "backfill_start", "reserve"}.  Off by default (the
        log grows with the workload).
    """

    def __init__(
        self,
        strategy,
        cluster: ClusterState | None = None,
        backfill: bool = True,
        conservative: bool = False,
        backfill_depth: int = 128,
        queue_policy=None,
        backfill_policy=None,
        walltime_factor: float = 1.0,
        trace: bool = False,
    ):
        if walltime_factor < 1.0:
            raise ValueError("walltime_factor must be >= 1 (users cannot "
                             "under-request without being killed)")
        self.strategy = strategy
        self.cluster = cluster if cluster is not None else ClusterState()
        self.backfill = backfill
        self.conservative = conservative
        self.backfill_depth = backfill_depth
        self.queue_policy = queue_policy or FCFSPolicy()
        self.backfill_policy = backfill_policy or FCFSPolicy()
        self.walltime_factor = walltime_factor
        self.trace = trace

    # ------------------------------------------------------------------
    def run(self, jobs: list[Job]) -> ScheduleResult:
        """Simulate scheduling of *jobs*; returns per-job outcomes."""
        if not jobs:
            raise ValueError("no jobs to schedule")
        arrivals = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        arrival_idx = 0
        cluster = self.cluster
        r1_key = self.queue_policy.key
        r2_key = self.backfill_policy.key

        n = len(jobs)
        queue: list[Job] = []
        head_idx = 0
        machines_out: dict[int, str] = {}
        start_out: dict[int, float] = {}
        scheduled: set[int] = set()
        started = 0
        backfilled = 0
        now = 0.0
        events: list[tuple[float, str, int, str]] = []

        def admit_arrivals() -> None:
            nonlocal arrival_idx, queue, head_idx
            added = False
            while (arrival_idx < n
                   and arrivals[arrival_idx].submit_time <= now):
                queue.append(arrivals[arrival_idx])
                arrival_idx += 1
                added = True
            if added:
                # Compact lazily-deleted entries, then restore R1 order.
                queue = [j for j in queue[head_idx:]
                         if j.job_id not in scheduled]
                queue.sort(key=r1_key)
                head_idx = 0

        def compact() -> None:
            nonlocal queue, head_idx
            if head_idx > 64 and head_idx * 2 > len(queue):
                queue = queue[head_idx:]
                head_idx = 0

        def advance_head() -> None:
            nonlocal head_idx
            while head_idx < len(queue) and \
                    queue[head_idx].job_id in scheduled:
                head_idx += 1

        def start_job(job: Job, machine_name: str) -> None:
            nonlocal started
            runtime = job.runtime_on(machine_name)
            cluster[machine_name].start(job.nodes_required, now + runtime)
            machines_out[job.job_id] = machine_name
            start_out[job.job_id] = now
            scheduled.add(job.job_id)
            started += 1

        while len(start_out) < n:
            admit_arrivals()

            made_progress = True
            while made_progress:
                advance_head()
                compact()
                if head_idx >= len(queue):
                    break
                made_progress = False
                head = queue[head_idx]
                m_name = self.strategy.assign(head, started, cluster)
                machine = cluster[m_name]
                if not machine.can_ever_fit(head.nodes_required):
                    raise RuntimeError(
                        f"job {head.job_id} needs {head.nodes_required} "
                        f"nodes; {m_name} has {machine.total_nodes}"
                    )
                if machine.can_fit(head.nodes_required):
                    start_job(head, m_name)
                    if self.trace:
                        events.append((now, "start", head.job_id, m_name))
                    head_idx += 1
                    made_progress = True
                    continue

                if not self.backfill or head_idx + 1 >= len(queue):
                    break
                # EASY: reserve head at its machine's shadow time, then
                # scan a bounded near-head window in R2 order.
                shadow = machine.shadow_time(head.nodes_required, now)
                if self.trace:
                    events.append((shadow, "reserve", head.job_id, m_name))
                window = [
                    j for j in
                    queue[head_idx + 1:
                          head_idx + 1 + 4 * self.backfill_depth]
                    if j.job_id not in scheduled
                ]
                window.sort(key=r2_key)
                for cand in window[: self.backfill_depth]:
                    c_name = self.strategy.assign(cand, started, cluster)
                    c_machine = cluster[c_name]
                    if not c_machine.can_ever_fit(cand.nodes_required):
                        continue
                    if not c_machine.can_fit(cand.nodes_required):
                        continue
                    # Feasibility uses the (possibly inflated) estimate;
                    # actual execution below uses the true runtime.
                    finishes = now + (cand.runtime_on(c_name)
                                      * self.walltime_factor)
                    if c_name == m_name and finishes > shadow:
                        # Would delay the head's reservation (the head
                        # consumes every node freed up to the shadow
                        # time by construction).
                        continue
                    if self.conservative and finishes > shadow:
                        # Conservative mode: nothing may outlive the
                        # reservation horizon, even on other machines.
                        continue
                    start_job(cand, c_name)
                    backfilled += 1
                    if self.trace:
                        events.append((now, "backfill_start",
                                       cand.job_id, c_name))
                break  # head still blocked; wait for an event

            if len(start_out) >= n:
                break
            # Advance time to the next event.
            next_done = cluster.next_completion()
            next_arrival = (arrivals[arrival_idx].submit_time
                            if arrival_idx < n else None)
            wake_times = [t for t in (next_done, next_arrival)
                          if t is not None]
            if not wake_times:
                raise RuntimeError("deadlock: no events but jobs unscheduled")
            now = max(now, min(wake_times))
            cluster.release_until(now)

        by_id = {j.job_id: j for j in jobs}
        ids = np.array(sorted(start_out), dtype=np.int64)
        starts = np.array([start_out[i] for i in ids])
        placed = [machines_out[i] for i in ids]
        runtimes = np.array(
            [by_id[i].runtime_on(machines_out[i]) for i in ids]
        )
        submits = np.array([by_id[i].submit_time for i in ids])
        return ScheduleResult(
            job_ids=ids,
            machines=placed,
            submit_times=submits,
            start_times=starts,
            end_times=starts + runtimes,
            runtimes=runtimes,
            strategy_name=getattr(self.strategy, "name", "custom"),
            backfilled=backfilled,
            extra={"events": events} if self.trace else {},
        )
