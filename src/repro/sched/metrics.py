"""Scheduling evaluation metrics (Section VII-A).

* **Makespan** — total time to finish the whole workload (system
  throughput view, Fig. 7).
* **Average bounded slowdown** — mean over jobs of
  ``max((wait + run) / max(run, bound), 1)`` with a 10-second bound to
  avoid over-penalizing very short jobs (per-job responsiveness view,
  Fig. 8).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.sched.simulator import ScheduleResult

__all__ = [
    "makespan",
    "average_bounded_slowdown",
    "average_wait_time",
    "per_machine_job_counts",
    "machine_utilization",
    "utilization_timeline",
    "jain_fairness",
]

#: Standard bounded-slowdown threshold (seconds).
DEFAULT_BOUND = 10.0


def makespan(result: ScheduleResult) -> float:
    """Seconds from the first submission to the last completion."""
    return float(result.end_times.max() - result.submit_times.min())


def average_bounded_slowdown(
    result: ScheduleResult, bound: float = DEFAULT_BOUND
) -> float:
    """Mean bounded slowdown over all jobs."""
    if bound <= 0:
        raise ValueError("bound must be positive")
    wait = result.wait_times
    run = result.runtimes
    slowdown = (wait + run) / np.maximum(run, bound)
    return float(np.maximum(slowdown, 1.0).mean())


def average_wait_time(result: ScheduleResult) -> float:
    """Mean queue wait in seconds."""
    return float(result.wait_times.mean())


def per_machine_job_counts(result: ScheduleResult) -> dict[str, int]:
    """Number of jobs placed on each machine."""
    return dict(Counter(result.machines))


def machine_utilization(
    result: ScheduleResult, node_counts: dict[str, int],
    nodes_per_job: dict[int, int] | None = None,
) -> dict[str, float]:
    """Node-time utilization per machine over the makespan.

    ``sum(job nodes * runtime) / (machine nodes * makespan)`` — the
    standard system-administrator throughput view.  *nodes_per_job*
    maps job id to node count (default: 1 node per job).
    """
    span = makespan(result)
    if span <= 0:
        raise ValueError("degenerate schedule with zero makespan")
    busy: dict[str, float] = {name: 0.0 for name in node_counts}
    for jid, machine, run in zip(result.job_ids, result.machines,
                                 result.runtimes):
        nodes = 1 if nodes_per_job is None else nodes_per_job.get(int(jid), 1)
        if machine not in busy:
            raise KeyError(f"machine {machine!r} not in node_counts")
        busy[machine] += nodes * run
    return {
        name: busy[name] / (node_counts[name] * span)
        for name in node_counts
    }


def utilization_timeline(
    result: ScheduleResult, machine: str, resolution: int = 200,
    nodes_per_job: dict[int, int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Busy-node count over time for one machine.

    Returns ``(times, busy_nodes)`` sampled at *resolution* uniform
    points across the makespan — the data behind a utilization plot.
    """
    if resolution < 2:
        raise ValueError("resolution must be >= 2")
    t0 = float(result.submit_times.min())
    t1 = float(result.end_times.max())
    times = np.linspace(t0, t1, resolution)
    busy = np.zeros(resolution)
    for jid, m, start, end in zip(result.job_ids, result.machines,
                                  result.start_times, result.end_times):
        if m != machine:
            continue
        nodes = 1 if nodes_per_job is None else nodes_per_job.get(int(jid), 1)
        busy += nodes * ((times >= start) & (times < end))
    return times, busy


def jain_fairness(result: ScheduleResult, bound: float = DEFAULT_BOUND) -> float:
    """Jain's fairness index over per-job bounded slowdowns.

    1.0 means every job experienced identical slowdown; 1/n means one
    job absorbed everything.  A per-user-experience complement to the
    paper's average bounded slowdown.
    """
    wait = result.wait_times
    run = result.runtimes
    slowdown = np.maximum((wait + run) / np.maximum(run, bound), 1.0)
    return float(slowdown.sum() ** 2 / (len(slowdown) * (slowdown**2).sum()))
