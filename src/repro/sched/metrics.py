"""Scheduling evaluation metrics (Section VII-A).

* **Makespan** — total time to finish the whole workload (system
  throughput view, Fig. 7).
* **Average bounded slowdown** — mean over jobs of
  ``max((wait + run) / max(run, bound), 1)`` with a 10-second bound to
  avoid over-penalizing very short jobs (per-job responsiveness view,
  Fig. 8).

Resilience metrics (extensions beyond the paper) read the fault
bookkeeping a failure-aware run leaves in ``result.extra["faults"]``;
on a fault-free result they return their perfect-world values (zero
waste, goodput 1, no retries) so reporting code needs no branching.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

import numpy as np

from repro.sched.simulator import ScheduleResult

__all__ = [
    "makespan",
    "average_bounded_slowdown",
    "average_wait_time",
    "per_machine_job_counts",
    "machine_utilization",
    "utilization_timeline",
    "jain_fairness",
    "wasted_node_seconds",
    "goodput",
    "retry_count",
    "completed_fraction",
    "degraded_prediction_fraction",
    "resilience_summary",
]

#: Standard bounded-slowdown threshold (seconds).
DEFAULT_BOUND = 10.0


def makespan(result: ScheduleResult) -> float:
    """Seconds from the first submission to the last completion."""
    return float(result.end_times.max() - result.submit_times.min())


def average_bounded_slowdown(
    result: ScheduleResult, bound: float = DEFAULT_BOUND
) -> float:
    """Mean bounded slowdown over all jobs."""
    if bound <= 0:
        raise ValueError("bound must be positive")
    wait = result.wait_times
    run = result.runtimes
    slowdown = (wait + run) / np.maximum(run, bound)
    return float(np.maximum(slowdown, 1.0).mean())


def average_wait_time(result: ScheduleResult) -> float:
    """Mean queue wait in seconds."""
    return float(result.wait_times.mean())


def per_machine_job_counts(result: ScheduleResult) -> dict[str, int]:
    """Number of jobs placed on each machine."""
    return dict(Counter(result.machines))


def machine_utilization(
    result: ScheduleResult, node_counts: dict[str, int],
    nodes_per_job: dict[int, int] | None = None,
) -> dict[str, float]:
    """Node-time utilization per machine over the makespan.

    ``sum(job nodes * runtime) / (machine nodes * makespan)`` — the
    standard system-administrator throughput view.  *nodes_per_job*
    maps job id to node count (default: 1 node per job).
    """
    span = makespan(result)
    if span <= 0:
        raise ValueError("degenerate schedule with zero makespan")
    busy: dict[str, float] = {name: 0.0 for name in node_counts}
    for jid, machine, run in zip(result.job_ids, result.machines,
                                 result.runtimes):
        nodes = 1 if nodes_per_job is None else nodes_per_job.get(int(jid), 1)
        if machine not in busy:
            raise KeyError(f"machine {machine!r} not in node_counts")
        busy[machine] += nodes * run
    return {
        name: busy[name] / (node_counts[name] * span)
        for name in node_counts
    }


def utilization_timeline(
    result: ScheduleResult, machine: str, resolution: int = 200,
    nodes_per_job: dict[int, int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Busy-node count over time for one machine.

    Returns ``(times, busy_nodes)`` sampled at *resolution* uniform
    points across the makespan — the data behind a utilization plot.
    """
    if resolution < 2:
        raise ValueError("resolution must be >= 2")
    t0 = float(result.submit_times.min())
    t1 = float(result.end_times.max())
    times = np.linspace(t0, t1, resolution)
    busy = np.zeros(resolution)
    for jid, m, start, end in zip(result.job_ids, result.machines,
                                  result.start_times, result.end_times):
        if m != machine:
            continue
        nodes = 1 if nodes_per_job is None else nodes_per_job.get(int(jid), 1)
        busy += nodes * ((times >= start) & (times < end))
    return times, busy


def _fault_info(result: ScheduleResult) -> dict:
    return result.extra.get("faults", {})


def wasted_node_seconds(result: ScheduleResult) -> float:
    """Node-seconds of work lost to kills (0 for a fault-free run).

    Checkpointed kills waste nothing: the completed fraction survives
    the restart.
    """
    return float(_fault_info(result).get("wasted_node_seconds", 0.0))


def goodput(
    result: ScheduleResult, nodes_per_job: dict[int, int] | None = None
) -> float:
    """Fraction of consumed node-seconds that produced completed work.

    ``useful / (useful + wasted)`` where useful is the node-time of
    successful (final-attempt) executions and wasted is the node-time
    of killed attempts.  1.0 in a perfect world; degrades with crash
    rate unless checkpointing is on.
    """
    useful = 0.0
    for jid, run in zip(result.job_ids, result.runtimes):
        nodes = 1 if nodes_per_job is None else nodes_per_job.get(int(jid), 1)
        useful += nodes * run
    wasted = wasted_node_seconds(result)
    if useful + wasted <= 0:
        raise ValueError("degenerate schedule with no consumed node-time")
    return float(useful / (useful + wasted))


def retry_count(result: ScheduleResult) -> int:
    """Total resubmissions across all jobs (0 for a fault-free run)."""
    return int(_fault_info(result).get("retries", 0))


def completed_fraction(result: ScheduleResult) -> float:
    """Jobs that finished / jobs submitted (1.0 unless a finite
    ``RetryPolicy.max_attempts`` abandoned some)."""
    failed = len(_fault_info(result).get("failed_jobs", ()))
    total = result.num_jobs + failed
    if total == 0:
        raise ValueError("empty schedule result")
    return result.num_jobs / total


def degraded_prediction_fraction(tier_counts: Mapping[str, int]) -> float:
    """Fraction of predictions served below the full-model tier.

    *tier_counts* maps degradation tier name to usage count — e.g.
    :attr:`repro.resilience.ResilientPredictor.tier_counts`.  0.0 when
    nothing was predicted (nothing degraded either).
    """
    total = sum(tier_counts.values())
    if total == 0:
        return 0.0
    return 1.0 - tier_counts.get("model", 0) / total


def resilience_summary(result: ScheduleResult) -> dict[str, float]:
    """One-line fault report: the numbers an operator would page on."""
    info = _fault_info(result)
    return {
        "node_failures": int(info.get("node_failures", 0)),
        "job_crashes": int(info.get("job_crashes", 0)),
        "preemptions": int(info.get("preemptions", 0)),
        "retries": retry_count(result),
        "failed_jobs": len(info.get("failed_jobs", ())),
        "wasted_node_seconds": wasted_node_seconds(result),
        "goodput": goodput(result),
        "completed_fraction": completed_fraction(result),
    }


def jain_fairness(result: ScheduleResult, bound: float = DEFAULT_BOUND) -> float:
    """Jain's fairness index over per-job bounded slowdowns.

    1.0 means every job experienced identical slowdown; 1/n means one
    job absorbed everything.  A per-user-experience complement to the
    paper's average bounded slowdown.
    """
    wait = result.wait_times
    run = result.runtimes
    slowdown = np.maximum((wait + run) / np.maximum(run, bound), 1.0)
    return float(slowdown.sum() ** 2 / (len(slowdown) * (slowdown**2).sum()))
