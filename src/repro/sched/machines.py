"""Cluster state: per-machine node accounting and completion tracking.

Machines carry an availability state for the failure-aware simulation:

* ``up`` — normal operation (the only state the fault-free simulator
  ever sees).
* ``drain`` — running jobs finish but no new jobs start (administrative
  drain before maintenance).
* ``down`` — every node is offline; nothing runs or starts.

Individual nodes can additionally be taken offline
(:meth:`MachineState.take_offline`) and brought back
(:meth:`MachineState.bring_online`) by the fault injector; a machine
whose last usable node goes offline transitions to ``down`` and returns
to ``up`` on the first recovery.
"""

from __future__ import annotations

from bisect import insort

from repro.arch.machines import MACHINES

__all__ = ["MachineState", "ClusterState"]

_STATES = ("up", "drain", "down")


class MachineState:
    """One machine's node pool and running-allocation list.

    Running allocations are kept as a list of ``(end_time, seq, nodes)``
    tuples in ascending order (a binary insertion per start), so the
    next completion is a peek, releasing is a prefix drop, and the EASY
    shadow-time computation is a prefix walk — no per-event sorting
    anywhere on the simulator's hot path.
    """

    __slots__ = ("name", "total_nodes", "free_nodes", "state",
                 "offline_nodes", "_running", "_seq")

    def __init__(self, name: str, total_nodes: int):
        if total_nodes < 1:
            raise ValueError("total_nodes must be >= 1")
        self.name = name
        self.total_nodes = total_nodes
        self.free_nodes = total_nodes
        self.state = "up"
        self.offline_nodes = 0
        # Sorted list of (end_time, seq, nodes) for running allocations.
        self._running: list[tuple[float, int, int]] = []
        self._seq = 0

    # -- capacity queries ------------------------------------------------
    @property
    def usable_nodes(self) -> int:
        """Nodes not currently offline (free or running)."""
        return self.total_nodes - self.offline_nodes

    def can_fit(self, nodes: int) -> bool:
        return self.state == "up" and self.free_nodes >= nodes

    def can_ever_fit(self, nodes: int) -> bool:
        return self.usable_nodes >= nodes

    # -- allocation lifecycle --------------------------------------------
    def start(self, nodes: int, end_time: float) -> int:
        """Allocate *nodes* until *end_time*; returns an allocation id."""
        if self.state != "up":
            raise RuntimeError(f"{self.name}: cannot start jobs while {self.state}")
        if nodes > self.free_nodes:
            raise RuntimeError(
                f"{self.name}: cannot start {nodes} nodes, {self.free_nodes} free"
            )
        self.free_nodes -= nodes
        seq = self._seq
        insort(self._running, (end_time, seq, nodes))
        self._seq += 1
        return seq

    def cancel(self, seq: int) -> None:
        """Remove a running allocation (job killed), freeing its nodes.

        Failures are rare events, so the O(n) scan is fine.
        """
        for i, (_, s, nodes) in enumerate(self._running):
            if s == seq:
                self._running.pop(i)
                self.free_nodes += nodes
                return
        raise KeyError(f"{self.name}: no running allocation {seq}")

    def next_completion(self) -> float | None:
        return self._running[0][0] if self._running else None

    def release_until(self, time: float) -> int:
        """Free all allocations ending at or before *time*; returns count."""
        running = self._running
        released = 0
        while released < len(running) and running[released][0] <= time:
            self.free_nodes += running[released][2]
            released += 1
        if released:
            del running[:released]
        return released

    def shadow_time(self, nodes_needed: int, now: float) -> float:
        """Earliest time *nodes_needed* nodes could be available.

        Walks the (already sorted) running allocations accumulating
        freed nodes; returns *now* if they are already free.  This is
        the EASY reservation time for a blocked head-of-queue job.
        Offline nodes do not count: while they are out the reservation
        cannot be met and this raises ``RuntimeError`` (the caller
        waits for recovery).
        """
        if self.free_nodes >= nodes_needed:
            return now
        available = self.free_nodes
        for end_time, _, nodes in self._running:
            available += nodes
            if available >= nodes_needed:
                return max(now, end_time)
        raise RuntimeError(
            f"{self.name}: {nodes_needed} nodes exceed machine capacity"
        )

    # -- availability transitions ----------------------------------------
    def drain(self) -> None:
        """Stop starting new jobs; running jobs finish normally."""
        if self.state == "down":
            raise RuntimeError(f"{self.name}: cannot drain a down machine")
        self.state = "drain"

    def resume(self) -> None:
        """Return a drained machine to normal operation."""
        if self.state != "drain":
            raise RuntimeError(f"{self.name}: resume() only applies to drain")
        self.state = "up"

    def take_offline(self, nodes: int = 1) -> None:
        """Take *nodes* idle nodes offline (node failure or maintenance).

        The caller must ensure enough free nodes exist — i.e. kill any
        victim jobs first so their nodes are released.  When the last
        usable node goes offline the machine transitions to ``down``.
        """
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        if nodes > self.free_nodes:
            raise RuntimeError(
                f"{self.name}: cannot take {nodes} nodes offline, "
                f"{self.free_nodes} free (kill victims first)"
            )
        self.free_nodes -= nodes
        self.offline_nodes += nodes
        if self.usable_nodes == 0:
            self.state = "down"

    def bring_online(self, nodes: int = 1) -> None:
        """Return *nodes* offline nodes to the free pool (recovery)."""
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        if nodes > self.offline_nodes:
            raise RuntimeError(
                f"{self.name}: only {self.offline_nodes} nodes offline"
            )
        self.offline_nodes -= nodes
        self.free_nodes += nodes
        if self.state == "down":
            self.state = "up"

    @property
    def used_nodes(self) -> int:
        return self.total_nodes - self.free_nodes - self.offline_nodes

    def __repr__(self) -> str:
        extra = "" if self.state == "up" else f", {self.state}"
        if self.offline_nodes:
            extra += f", {self.offline_nodes} offline"
        return (
            f"MachineState({self.name}, {self.used_nodes}/{self.total_nodes} "
            f"used{extra})"
        )


class ClusterState:
    """The set of machines participating in multi-resource scheduling."""

    def __init__(self, node_counts: dict[str, int] | None = None):
        """*node_counts* defaults to the Table I cluster sizes."""
        if node_counts is None:
            node_counts = {name: spec.nodes for name, spec in MACHINES.items()}
        if not node_counts:
            raise ValueError("need at least one machine")
        self.machines: dict[str, MachineState] = {
            name: MachineState(name, count) for name, count in node_counts.items()
        }

    @property
    def names(self) -> list[str]:
        return list(self.machines)

    def __getitem__(self, name: str) -> MachineState:
        try:
            return self.machines[name]
        except KeyError:
            raise KeyError(
                f"unknown machine {name!r}; known: {self.names}"
            ) from None

    def next_completion(self) -> float | None:
        times = [
            t for m in self.machines.values()
            if (t := m.next_completion()) is not None
        ]
        return min(times) if times else None

    def release_until(self, time: float) -> int:
        return sum(m.release_until(time) for m in self.machines.values())
