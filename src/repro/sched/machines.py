"""Cluster state: per-machine node accounting and completion tracking."""

from __future__ import annotations

import heapq

from repro.arch.machines import MACHINES

__all__ = ["MachineState", "ClusterState"]


class MachineState:
    """One machine's node pool and running-job completion heap."""

    def __init__(self, name: str, total_nodes: int):
        if total_nodes < 1:
            raise ValueError("total_nodes must be >= 1")
        self.name = name
        self.total_nodes = total_nodes
        self.free_nodes = total_nodes
        # Min-heap of (end_time, seq, nodes) for running allocations.
        self._running: list[tuple[float, int, int]] = []
        self._seq = 0

    def can_fit(self, nodes: int) -> bool:
        return self.free_nodes >= nodes

    def can_ever_fit(self, nodes: int) -> bool:
        return self.total_nodes >= nodes

    def start(self, nodes: int, end_time: float) -> None:
        if nodes > self.free_nodes:
            raise RuntimeError(
                f"{self.name}: cannot start {nodes} nodes, {self.free_nodes} free"
            )
        self.free_nodes -= nodes
        heapq.heappush(self._running, (end_time, self._seq, nodes))
        self._seq += 1

    def next_completion(self) -> float | None:
        return self._running[0][0] if self._running else None

    def release_until(self, time: float) -> int:
        """Free all allocations ending at or before *time*; returns count."""
        released = 0
        while self._running and self._running[0][0] <= time:
            _, _, nodes = heapq.heappop(self._running)
            self.free_nodes += nodes
            released += 1
        return released

    def shadow_time(self, nodes_needed: int, now: float) -> float:
        """Earliest time *nodes_needed* nodes could be available.

        Walks the completion heap accumulating freed nodes; returns
        *now* if they are already free.  This is the EASY reservation
        time for a blocked head-of-queue job.
        """
        if self.free_nodes >= nodes_needed:
            return now
        available = self.free_nodes
        for end_time, _, nodes in sorted(self._running):
            available += nodes
            if available >= nodes_needed:
                return max(now, end_time)
        raise RuntimeError(
            f"{self.name}: {nodes_needed} nodes exceed machine capacity"
        )

    @property
    def used_nodes(self) -> int:
        return self.total_nodes - self.free_nodes

    def __repr__(self) -> str:
        return (
            f"MachineState({self.name}, {self.used_nodes}/{self.total_nodes} used)"
        )


class ClusterState:
    """The set of machines participating in multi-resource scheduling."""

    def __init__(self, node_counts: dict[str, int] | None = None):
        """*node_counts* defaults to the Table I cluster sizes."""
        if node_counts is None:
            node_counts = {name: spec.nodes for name, spec in MACHINES.items()}
        if not node_counts:
            raise ValueError("need at least one machine")
        self.machines: dict[str, MachineState] = {
            name: MachineState(name, count) for name, count in node_counts.items()
        }

    @property
    def names(self) -> list[str]:
        return list(self.machines)

    def __getitem__(self, name: str) -> MachineState:
        try:
            return self.machines[name]
        except KeyError:
            raise KeyError(
                f"unknown machine {name!r}; known: {self.names}"
            ) from None

    def next_completion(self) -> float | None:
        times = [
            t for m in self.machines.values()
            if (t := m.next_completion()) is not None
        ]
        return min(times) if times else None

    def release_until(self, time: float) -> int:
        return sum(m.release_until(time) for m in self.machines.values())
