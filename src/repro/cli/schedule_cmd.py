"""``repro schedule``: the Section VII scheduling experiment.

Fault-free by default (the paper's perfect world); ``--fault-profile``
reruns the same workload through the resilience layer.  Strategy and
fault-profile choices come straight from their registries, so a newly
registered strategy is schedulable with no CLI change.
"""

from __future__ import annotations

import argparse

from repro import telemetry
from repro.cli._options import (
    add_spine_options,
    close_run,
    experiment_from_args,
    open_run,
)
from repro.config import ScheduleConfig
from repro.resilience.faults import FAULT_PROFILES
from repro.sched.strategies import STRATEGIES


def add_subparsers(sub) -> None:
    s = ScheduleConfig()
    p = sub.add_parser("schedule", help="scheduling experiment (Figs. 7-8)")
    p.add_argument("--jobs", type=int, default=s.jobs)
    p.add_argument("--inputs-per-app", type=int, default=s.inputs_per_app)
    p.add_argument("--seed", type=int, default=s.seed)
    p.add_argument("--strategies", nargs="+", default=list(s.strategies),
                   choices=sorted(STRATEGIES))
    p.add_argument("--swf-output", default=s.swf_output,
                   help="write the model-strategy schedule as an SWF trace")
    p.add_argument("--fault-profile", default=s.fault_profile,
                   choices=sorted(FAULT_PROFILES),
                   help="inject node failures, job crashes, and counter "
                        "corruption (none = the paper's perfect world)")
    p.add_argument("--checkpoint", action="store_true",
                   help="killed jobs restart from their completed "
                        "fraction instead of from scratch")
    p.add_argument("--max-attempts", type=int, default=s.max_attempts,
                   help="abandon a job after this many attempts "
                        "(default: retry forever)")
    p.add_argument("--with-uncertainty", dest="with_uncertainty",
                   action="store_true", default=s.with_uncertainty,
                   help="attach per-job predictive uncertainty to the "
                        "workload (arms the risk-aware/uncertainty "
                        "strategies; per-machine summary lands in "
                        "metrics.json)")
    add_spine_options(p)
    p.set_defaults(func=cmd_schedule)


def cmd_schedule(args: argparse.Namespace) -> int:
    from repro.core import CrossArchPredictor
    from repro.dataset import generate_dataset
    from repro.ml import train_test_split
    from repro.sched import (
        Scheduler,
        average_bounded_slowdown,
        makespan,
        strategy_by_name,
    )
    from repro.sched.machines import ClusterState
    from repro.workloads import build_workload
    from repro.workloads.swf import write_swf

    experiment = experiment_from_args(args)
    cfg = experiment.config
    dataset = generate_dataset(inputs_per_app=cfg.inputs_per_app,
                               seed=cfg.seed)
    train_rows, _ = train_test_split(dataset.num_rows, 0.1, random_state=42)
    # Quantile heads fit strictly after (and independently of) the main
    # boosting rounds, so turning them on leaves every prediction — and
    # therefore every strategy's schedule — bit-identical.
    extra = {"quantile_heads": (0.25, 0.75)} if cfg.with_uncertainty else {}
    predictor = CrossArchPredictor.train(dataset, rows=train_rows, **extra)
    if cfg.fault_profile != "none":
        return _schedule_with_faults(args, experiment, dataset, predictor)
    jobs = build_workload(dataset, n_jobs=cfg.jobs, seed=cfg.seed + 1,
                          predictor=predictor,
                          with_uncertainty=cfg.with_uncertainty)
    # In trace mode the simulator also records its (simulated-time)
    # event log, exported per strategy as a Chrome trace of its own.
    sim_trace = telemetry.tracing_enabled()
    print(f"{'strategy':>12s} {'makespan(h)':>12s} {'bounded slowdown':>17s}")
    metrics = {}
    swf_path = None
    sim_events: dict[str, list] = {}
    for name in cfg.strategies:
        result = Scheduler(strategy_by_name(name, seed=11),
                           ClusterState(), trace=sim_trace).run(list(jobs))
        hours = makespan(result) / 3600
        slowdown = average_bounded_slowdown(result)
        print(f"{name:>12s} {hours:12.3f} {slowdown:17.2f}")
        metrics[name] = {"makespan_hours": hours,
                         "bounded_slowdown": slowdown}
        if sim_trace:
            sim_events[name] = result.extra.get("events", [])
        if name == "model" and cfg.swf_output:
            write_swf(result, cfg.swf_output,
                      header="repro scheduling experiment")
            print(f"  SWF trace written to {cfg.swf_output}")
            swf_path = cfg.swf_output
    if cfg.with_uncertainty:
        import numpy as np

        stds = np.vstack([job.rpv_std for job in jobs])
        uncertainty = {
            system: {
                "mean_std": float(stds[:, i].mean()),
                "p95_std": float(np.percentile(stds[:, i], 95)),
                "max_std": float(stds[:, i].max()),
            }
            for i, system in enumerate(predictor.systems)
        }
        metrics["uncertainty"] = uncertainty
        print("per-machine predictive uncertainty (rel-time std):")
        for system, stats in uncertainty.items():
            print(f"{system:>12s} mean {stats['mean_std']:.4f} "
                  f"p95 {stats['p95_std']:.4f} max {stats['max_std']:.4f}")
    run = open_run(args, experiment)
    if run is not None:
        run.save_metrics(metrics)
        if swf_path:
            run.attach(swf_path)
        for name, events in sim_events.items():
            telemetry.write_json(
                run.file(f"sim_trace_{name}.json"),
                telemetry.sim_events_to_chrome(events),
            )
    close_run(run)
    return 0


def _schedule_with_faults(args, experiment, dataset, predictor) -> int:
    """The Fig. 7 experiment re-run in a hostile world.

    The workload's counter vectors pass through the fault injector's
    corruption channel and the :class:`ResilientPredictor` degradation
    chain before scheduling; each strategy then runs under its own
    (identically-seeded) injector so every strategy faces the same
    failure sequence.
    """
    from repro.resilience import (
        CorruptingPredictor,
        FaultInjector,
        FaultProfile,
        ResilientPredictor,
        RetryPolicy,
    )
    from repro.sched import (
        Scheduler,
        average_bounded_slowdown,
        degraded_prediction_fraction,
        goodput,
        makespan,
        resilience_summary,
        strategy_by_name,
    )
    from repro.sched.machines import ClusterState
    from repro.workloads import build_workload

    cfg = experiment.config
    profile = FaultProfile.preset(cfg.fault_profile)
    resilient = ResilientPredictor.from_training(predictor, dataset)
    corrupting = CorruptingPredictor(
        resilient, FaultInjector(profile, seed=cfg.seed + 2)
    )
    jobs = build_workload(dataset, n_jobs=cfg.jobs, seed=cfg.seed + 1,
                          predictor=corrupting)
    retry = RetryPolicy(max_attempts=cfg.max_attempts,
                        checkpoint=cfg.checkpoint)
    degraded = degraded_prediction_fraction(resilient.tier_counts)
    print(f"fault profile {profile.name}: node MTBF/machine "
          f"{profile.node_mtbf:.0f}s, crash prob {profile.crash_prob:.0%}, "
          f"counter corruption {profile.corruption_prob:.0%}")
    print(f"degraded predictions: {degraded:.1%} "
          f"(tiers: {dict(resilient.tier_counts)})")
    print(f"{'strategy':>12s} {'makespan(h)':>12s} {'slowdown':>9s} "
          f"{'goodput':>8s} {'retries':>8s} {'completed':>10s}")
    metrics = {}
    for name in cfg.strategies:
        # A fresh injector per strategy: every strategy sees the same
        # failure sequence.
        scheduler = Scheduler(
            strategy_by_name(name, seed=11), ClusterState(),
            faults=FaultInjector(profile, seed=cfg.seed + 2), retry=retry,
        )
        result = scheduler.run(list(jobs))
        summary = resilience_summary(result)
        completed = result.num_jobs
        total = completed + summary["failed_jobs"]
        hours = makespan(result) / 3600
        print(f"{name:>12s} {hours:12.3f} "
              f"{average_bounded_slowdown(result):9.2f} "
              f"{goodput(result):8.3f} {summary['retries']:8d} "
              f"{completed:6d}/{total:<4d}")
        metrics[name] = {
            "makespan_hours": hours,
            "bounded_slowdown": average_bounded_slowdown(result),
            "goodput": goodput(result),
            "retries": summary["retries"],
            "completed": completed,
            "total": total,
        }
    run = open_run(args, experiment)
    if run is not None:
        run.save_metrics(metrics)
    close_run(run)
    return 0
