"""``repro train``: fit a predictor and persist it."""

from __future__ import annotations

import argparse

from repro.cli._options import (
    add_spine_options,
    close_run,
    experiment_from_args,
    open_run,
)
from repro.config import TrainConfig
from repro.ml import MODELS


def add_subparsers(sub) -> None:
    t = TrainConfig()
    p = sub.add_parser("train", help="train a predictor and save it")
    p.add_argument("--model", default=t.model, choices=sorted(MODELS))
    p.add_argument("--inputs-per-app", type=int, default=t.inputs_per_app)
    p.add_argument("--seed", type=int, default=t.seed)
    p.add_argument("--split-seed", type=int, default=t.split_seed)
    p.add_argument("--output", default=t.output)
    p.add_argument("--zeroshot", action="store_true", default=t.zeroshot,
                   help="also fit the descriptor-conditioned zero-shot "
                        "head (saved as zeroshot.pkl in the run dir)")
    p.add_argument("--exclude-machine", dest="exclude_machines",
                   action="append", default=list(t.exclude_machines),
                   metavar="NAME",
                   help="hold a machine out of the zero-shot training "
                        "rows (repeatable; leave-one-machine-out "
                        "generalization runs)")
    add_spine_options(p)
    p.set_defaults(func=cmd_train)


def cmd_train(args: argparse.Namespace) -> int:
    from repro.core import CrossArchPredictor
    from repro.dataset import generate_dataset
    from repro.ml import mean_absolute_error, same_order_score, train_test_split
    from repro.resilience import ResilientPredictor

    experiment = experiment_from_args(args)
    cfg = experiment.config
    dataset = generate_dataset(inputs_per_app=cfg.inputs_per_app,
                               seed=cfg.seed)
    train_rows, test_rows = train_test_split(
        dataset.num_rows, 0.1, random_state=cfg.split_seed
    )
    predictor = CrossArchPredictor.train(dataset, model=cfg.model,
                                         rows=train_rows)
    pred = predictor.predict(dataset.X()[test_rows])
    truth = dataset.Y()[test_rows]
    mae = mean_absolute_error(truth, pred)
    sos = same_order_score(truth, pred)
    print(f"{cfg.model}: test MAE {mae:.4f} SOS {sos:.3f}")
    predictor.save(cfg.output)
    print(f"saved predictor to {cfg.output}")
    zeroshot = None
    zeroshot_rows = 0
    if cfg.zeroshot:
        from repro.core.zeroshot import DescriptorConditionedPredictor
        from repro.dataset.longform import build_longform

        longform = build_longform(dataset)
        for name in cfg.exclude_machines:
            longform = longform.exclude_machine(name)
        zeroshot_rows = longform.frame.num_rows
        zeroshot = DescriptorConditionedPredictor.train(
            longform, model=cfg.model
        )
        held_out = (f", held out: {', '.join(cfg.exclude_machines)}"
                    if cfg.exclude_machines else "")
        print(f"zero-shot head: {cfg.model} on {zeroshot_rows} "
              f"long-format rows{held_out}")
    run = open_run(args, experiment)
    if run is not None:
        run.attach(cfg.output)
        run.save_model(predictor.model)
        metrics = {cfg.model: {"mae": mae, "sos": sos}}
        if zeroshot is not None:
            from repro.serve.model_manager import ZEROSHOT_MODEL_NAME

            zeroshot.save(run.file(ZEROSHOT_MODEL_NAME))
            metrics["zeroshot"] = {
                "rows": zeroshot_rows,
                "excluded": list(cfg.exclude_machines),
            }
        run.save_metrics(metrics)
        # Training-set stats that arm the serving-time degradation
        # chain (repro serve loads these to answer without the model
        # under overload or with broken counters).
        resilient = ResilientPredictor.from_training(predictor, dataset)
        run.save_json("resilience.json", {
            "feature_fill": [float(v) for v in resilient.feature_fill],
            "mean_rpv": [float(v) for v in resilient.mean_rpv],
        })
    close_run(run)
    return 0
