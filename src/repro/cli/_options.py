"""Shared experiment-spine plumbing for the CLI subcommands.

Every subcommand gets three flags wired through here:

* ``--config FILE``       — replay: load the full typed config from a
  saved :class:`~repro.config.ExperimentConfig` JSON file.  The file's
  values replace every config-covered flag, so a replayed run is
  bit-identical to the run that saved it.
* ``--save-config FILE``  — write the run's config (as built from the
  command line) before running, so the run can be replayed later.
* ``--run-dir DIR``       — collect the run's artifacts under a
  provenance-stamped run directory (see :mod:`repro.artifacts`).
* ``--telemetry MODE``    — ``off`` (default), ``metrics`` (counters/
  histograms), or ``trace`` (metrics plus timing spans).  With a run
  directory open, :func:`close_run` folds the metric snapshot into
  ``metrics.json`` (under a ``"telemetry"`` key) and writes the span
  trace as ``trace.json`` (Chrome ``trace_event`` format) *before*
  finalizing, so both land in the manifest inventory.

Subcommand modules stay thin: they declare arguments whose ``dest``
names match their config dataclass's fields, call
:func:`experiment_from_args` to get the typed config, run the library
entry points, and hand any artifacts to the :class:`RunDir` returned by
:func:`open_run`.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import fields

from repro import telemetry
from repro.artifacts import RunDir
from repro.config import COMMAND_CONFIGS, BaseConfig, ExperimentConfig
from repro.errors import ConfigError

__all__ = [
    "add_spine_options",
    "experiment_from_args",
    "open_run",
    "close_run",
    "save_telemetry",
    "make_cache",
    "print_cache_stats",
]


def add_spine_options(parser: argparse.ArgumentParser) -> None:
    """Attach ``--config`` / ``--save-config`` / ``--run-dir``."""
    group = parser.add_argument_group("experiment spine")
    group.add_argument(
        "--config", dest="config_file", metavar="FILE",
        help="replay a saved experiment config; its values replace "
             "every other option of this subcommand",
    )
    group.add_argument(
        "--save-config", dest="save_config_file", metavar="FILE",
        help="write this run's config as JSON (replayable via --config), "
             "then run",
    )
    group.add_argument(
        "--run-dir", dest="run_dir", metavar="DIR",
        help="collect outputs under DIR/<command>-<confighash> with a "
             "provenance manifest.json",
    )
    group.add_argument(
        "--telemetry", dest="telemetry", choices=telemetry.MODES,
        default="off",
        help="record runtime telemetry: 'metrics' collects counters and "
             "histograms, 'trace' adds timing spans (saved to the run "
             "dir as metrics.json/trace.json; view trace.json at "
             "chrome://tracing or ui.perfetto.dev)",
    )


def _config_from_namespace(cls: type[BaseConfig],
                           args: argparse.Namespace) -> BaseConfig:
    values = {}
    for f in fields(cls):
        value = getattr(args, f.name)
        if isinstance(value, list):
            value = tuple(value)
        values[f.name] = value
    return cls(**values)


def experiment_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """The run's typed config: loaded from ``--config`` if given, else
    built from the parsed flags; saved to ``--save-config`` if asked.
    """
    command = COMMAND_CONFIGS.canonical(args.command)
    if args.config_file:
        experiment = ExperimentConfig.load(args.config_file)
        if experiment.command != command:
            raise ConfigError(
                f"{args.config_file} holds a {experiment.command!r} config "
                f"but was passed to 'repro {args.command}'"
            )
    else:
        cls = COMMAND_CONFIGS[command]
        experiment = ExperimentConfig(
            command, _config_from_namespace(cls, args)
        )
    if args.save_config_file:
        experiment.save(args.save_config_file)
        print(f"config written to {args.save_config_file} "
              f"(hash {experiment.content_hash()[:12]})")
    return experiment


def open_run(args: argparse.Namespace,
             experiment: ExperimentConfig) -> RunDir | None:
    """The run's artifact directory, or None without ``--run-dir``."""
    if not getattr(args, "run_dir", None):
        return None
    return RunDir.create(args.run_dir, experiment)


def save_telemetry(run: RunDir | None) -> None:
    """Write collected telemetry into the run dir (pre-finalize).

    The metric snapshot rides inside ``metrics.json`` under a
    ``"telemetry"`` key — merged into the headline metrics the
    subcommand already saved, not clobbering them — and the span trace
    (trace mode only) becomes ``trace.json`` in Chrome ``trace_event``
    format.  Called by :func:`close_run` before ``finalize()`` so both
    files are checksummed into the manifest inventory.
    """
    if run is None or not telemetry.metrics_enabled():
        return
    metrics_path = run.file("metrics.json")
    payload: dict = {}
    if metrics_path.is_file():
        try:
            existing = json.loads(metrics_path.read_text())
            if isinstance(existing, dict):
                payload = existing
        except json.JSONDecodeError:
            pass
    payload["telemetry"] = telemetry.snapshot()
    run.save_json("metrics.json", payload)
    if telemetry.tracing_enabled():
        spans = telemetry.spans()
        telemetry.write_json(
            run.file("trace.json"), telemetry.chrome_trace(spans)
        )
        print(f"telemetry: {len(spans)} spans -> "
              f"{run.file('trace.json')} (chrome://tracing)")


def close_run(run: RunDir | None) -> None:
    """Seal the run directory (checksums + manifest), if one is open."""
    if run is not None:
        save_telemetry(run)
        manifest = run.finalize()
        print(f"run manifest written to {manifest}")


def make_cache(cache_dir: str | None):
    """A ShardCache for *cache_dir*, or None when caching is off."""
    if cache_dir is None:
        return None
    from repro.dataset.store import ShardCache

    return ShardCache(cache_dir)


def print_cache_stats(cache) -> None:
    if cache is not None:
        s = cache.stats
        print(f"cache {cache.cache_dir}: {s.hits} hits, {s.misses} misses, "
              f"{s.evictions} evicted")
