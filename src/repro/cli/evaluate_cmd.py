"""``repro evaluate`` / ``repro importance`` / ``repro calibrate``.

The paper's study commands: the Fig. 2 four-model comparison, the
Fig. 6 feature-importance report, and the measurement-noise
diagnostics.  The evaluate metrics JSON is the acceptance artifact for
config replay: the same saved config reproduces it bit-identically.
"""

from __future__ import annotations

import argparse

from repro.cli._options import (
    add_spine_options,
    close_run,
    experiment_from_args,
    make_cache,
    open_run,
    print_cache_stats,
)
from repro.config import CalibrateConfig, EvaluateConfig, ImportanceConfig


def add_subparsers(sub) -> None:
    e = EvaluateConfig()
    p = sub.add_parser("evaluate", help="four-model comparison (Fig. 2)")
    p.add_argument("--inputs-per-app", type=int, default=e.inputs_per_app)
    p.add_argument("--seed", type=int, default=e.seed)
    p.add_argument("--cv", action="store_true",
                   help="also run 5-fold cross-validation")
    p.add_argument("--jobs", type=int, default=e.jobs,
                   help="worker processes for dataset generation and "
                        "model training (0 = all cores)")
    p.add_argument("--cache-dir", default=e.cache_dir,
                   help="shard cache directory")
    add_spine_options(p)
    p.set_defaults(func=cmd_evaluate)

    i = ImportanceConfig()
    p = sub.add_parser("importance", help="feature importances (Fig. 6)")
    p.add_argument("--inputs-per-app", type=int, default=i.inputs_per_app)
    p.add_argument("--seed", type=int, default=i.seed)
    p.add_argument("--top", type=int, default=i.top)
    add_spine_options(p)
    p.set_defaults(func=cmd_importance)

    c = CalibrateConfig()
    p = sub.add_parser("calibrate", help="measurement noise floor and "
                                         "orderability diagnostics")
    p.add_argument("--inputs-per-app", type=int, default=c.inputs_per_app)
    p.add_argument("--seed", type=int, default=c.seed)
    add_spine_options(p)
    p.set_defaults(func=cmd_calibrate)


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core.evaluation import model_comparison_study
    from repro.dataset import generate_dataset

    experiment = experiment_from_args(args)
    cfg = experiment.config
    cache = make_cache(cfg.cache_dir)
    dataset = generate_dataset(inputs_per_app=cfg.inputs_per_app,
                               seed=cfg.seed, jobs=cfg.jobs, cache=cache)
    frame = model_comparison_study(dataset, seed=42, run_cv=cfg.cv,
                                   jobs=cfg.jobs)
    print(f"{'model':>10s} {'MAE':>8s} {'SOS':>8s}")
    metrics = {}
    for model, mae, sos in zip(frame["model"], frame["mae"], frame["sos"]):
        print(f"{model:>10s} {mae:8.4f} {sos:8.3f}")
        metrics[model] = {"mae": float(mae), "sos": float(sos)}
    print_cache_stats(cache)
    run = open_run(args, experiment)
    if run is not None:
        run.save_metrics(metrics)
    close_run(run)
    return 0


def cmd_importance(args: argparse.Namespace) -> int:
    from repro.core.evaluation import feature_importance_study
    from repro.dataset import generate_dataset

    experiment = experiment_from_args(args)
    cfg = experiment.config
    dataset = generate_dataset(inputs_per_app=cfg.inputs_per_app,
                               seed=cfg.seed)
    frame = feature_importance_study(dataset, seed=42)
    top = list(zip(frame["label"], frame["importance"]))[: cfg.top]
    for label, value in top:
        bar = "#" * int(round(50 * value))
        print(f"{label:>22s} {value:7.4f} {bar}")
    run = open_run(args, experiment)
    if run is not None:
        run.save_metrics({label: float(value) for label, value in top},
                         name="importance.json")
    close_run(run)
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.core import estimate_noise_floor, gap_statistics
    from repro.dataset import generate_dataset

    experiment = experiment_from_args(args)
    cfg = experiment.config
    floor = estimate_noise_floor(inputs_per_app=cfg.inputs_per_app,
                                 seed=cfg.seed)
    print(f"test-retest SOS ceiling: {floor.sos_ceiling:.3f} "
          f"({floor.groups} groups)")
    print(f"RPV MAE noise floor:     {floor.rpv_mae_floor:.4f}")
    dataset = generate_dataset(inputs_per_app=cfg.inputs_per_app,
                               seed=cfg.seed)
    stats = gap_statistics(dataset.Y())
    print(f"median adjacent RPV gap: {stats['median']:.3f}")
    print(f"near-tied rows (<0.05):  {stats['near_tied_fraction']:.0%}")
    run = open_run(args, experiment)
    if run is not None:
        run.save_metrics({
            "sos_ceiling": float(floor.sos_ceiling),
            "rpv_mae_floor": float(floor.rpv_mae_floor),
            "median_gap": float(stats["median"]),
            "near_tied_fraction": float(stats["near_tied_fraction"]),
        })
    close_run(run)
    return 0
