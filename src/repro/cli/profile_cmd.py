"""``repro profile`` / ``repro predict`` / ``repro whatif``.

The single-run commands: profile one (app, machine, scale) run, predict
its RPV with a saved model, or rank a set of apps for porting value.
``--app`` and ``--machine`` deliberately carry no argparse ``choices``:
unknown names flow through the registries, whose typed
:class:`~repro.errors.UnknownNameError` lists the valid names and
suggests near-misses (and exits 2 like every other config error).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.cli._options import (
    add_spine_options,
    close_run,
    experiment_from_args,
    open_run,
)
from repro.config import SCALES, PredictConfig, ProfileConfig, WhatifConfig


def add_subparsers(sub) -> None:
    # --app/--machine/--predictor are "required", but not at argparse
    # level: a --config replay supplies them from the file, and the
    # typed configs reject empty names with a clean exit-2 error.
    f = ProfileConfig(app="_", machine="_")
    p = sub.add_parser("profile", help="profile one run, print counters")
    p.add_argument("--app", default="")
    p.add_argument("--machine", default="")
    p.add_argument("--scale", default=f.scale, choices=SCALES)
    p.add_argument("--seed", type=int, default=f.seed)
    p.add_argument("--save", default=f.save,
                   help="write the profile JSON here")
    add_spine_options(p)
    p.set_defaults(func=cmd_profile)

    d = PredictConfig(predictor="_", app="_")
    p = sub.add_parser("predict", help="profile a run, predict its RPV")
    p.add_argument("--predictor", default="",
                   help="path from `repro train --output`")
    p.add_argument("--app", default="")
    p.add_argument("--machine", default=d.machine)
    p.add_argument("--scale", default=d.scale, choices=SCALES)
    p.add_argument("--seed", type=int, default=d.seed)
    add_spine_options(p)
    p.set_defaults(func=cmd_predict)

    w = WhatifConfig(predictor="_", apps=("_",))
    p = sub.add_parser("whatif", help="porting shortlist from one system's "
                                      "profiles (Section VIII-B use case)")
    p.add_argument("--predictor", default="")
    p.add_argument("--apps", nargs="+", default=[])
    p.add_argument("--source", default=w.source)
    p.add_argument("--scale", default=w.scale, choices=SCALES)
    p.add_argument("--seed", type=int, default=w.seed)
    add_spine_options(p)
    p.set_defaults(func=cmd_whatif)


def _profile_one(app_name: str, machine_name: str, scale: str, seed: int):
    """One profiled run; unknown names raise registry UnknownNameError."""
    from repro.apps import generate_inputs, get_app
    from repro.arch import get_machine
    from repro.perfsim.config import make_run_config
    from repro.profiler import profile_run

    app = get_app(app_name)
    machine = get_machine(machine_name)
    inp = generate_inputs(app, 1, seed=seed)[0]
    config = make_run_config(app, machine, scale)
    return profile_run(app, inp, machine, config, seed=seed)


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.hatchet_lite import run_record
    from repro.profiler import save_profile

    experiment = experiment_from_args(args)
    cfg = experiment.config
    profile = _profile_one(cfg.app, cfg.machine, cfg.scale, cfg.seed)
    print(f"{profile.meta['app']} on {profile.meta['machine']} "
          f"({profile.meta['scale']}, {profile.meta['profiler']}): "
          f"{profile.meta['time_seconds']:.2f}s")
    record = run_record(profile)
    for key in ("total_instructions", "branch", "load", "store", "fp_sp",
                "fp_dp", "int_arith", "l1_load_miss", "l2_load_miss",
                "mem_stall_cycles"):
        print(f"  {key:20s} {record[key]:.4g}")
    if cfg.save:
        save_profile(profile, cfg.save)
        print(f"profile written to {cfg.save}")
    run = open_run(args, experiment)
    if run is not None:
        save_profile(profile, run.file("profile.json"))
        # Headline numbers for cross-run comparison (the sweep report
        # ranks cells by these — e.g. time_seconds across machines).
        run.save_metrics({
            "app": profile.meta["app"],
            "machine": profile.meta["machine"],
            "scale": profile.meta["scale"],
            "time_seconds": float(profile.meta["time_seconds"]),
            "total_instructions": float(record["total_instructions"]),
        })
        if cfg.save:
            run.attach(cfg.save)
    close_run(run)
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    from repro.core import CrossArchPredictor
    from repro.hatchet_lite import run_record

    experiment = experiment_from_args(args)
    cfg = experiment.config
    predictor = CrossArchPredictor.load(cfg.predictor)
    profile = _profile_one(cfg.app, cfg.machine, cfg.scale, cfg.seed)
    record = run_record(profile)
    rpv = predictor.predict_record(record)
    print(f"predicted RPV for {cfg.app} (counters from {cfg.machine}, "
          f"{cfg.scale}):")
    for system, value in zip(predictor.systems, rpv):
        print(f"  {system:8s} {value:.3f}")
    order = [predictor.systems[i] for i in np.argsort(rpv)]
    print("fastest first: " + ", ".join(order))
    run = open_run(args, experiment)
    if run is not None:
        run.save_metrics({
            "rpv": {system: float(value)
                    for system, value in zip(predictor.systems, rpv)},
            "fastest_first": order,
        })
    close_run(run)
    return 0


def cmd_whatif(args: argparse.Namespace) -> int:
    from repro.apps import generate_inputs, get_app
    from repro.arch import get_machine
    from repro.core import CrossArchPredictor, porting_value
    from repro.hatchet_lite import run_record
    from repro.perfsim.config import make_run_config
    from repro.profiler import profile_run

    experiment = experiment_from_args(args)
    cfg = experiment.config
    predictor = CrossArchPredictor.load(cfg.predictor)
    machine = get_machine(cfg.source)
    records = []
    for app_name in cfg.apps:
        app = get_app(app_name)
        inp = generate_inputs(app, 1, seed=cfg.seed)[0]
        config = make_run_config(app, machine, cfg.scale)
        records.append(
            run_record(profile_run(app, inp, machine, config,
                                   seed=cfg.seed))
        )
    ranked = porting_value(predictor, records, source_system=cfg.source)
    print(f"porting shortlist (profiled on {cfg.source}, {cfg.scale}):")
    shortlist = []
    for app_name, system, speedup in zip(
        ranked["app"], ranked["best_gpu_system"],
        ranked["speedup_vs_source"],
    ):
        print(f"  {app_name:14s} -> {system:8s} {speedup:5.1f}x")
        shortlist.append({"app": app_name, "best_gpu_system": system,
                          "speedup_vs_source": float(speedup)})
    run = open_run(args, experiment)
    if run is not None:
        run.save_metrics({"shortlist": shortlist})
    close_run(run)
    return 0
