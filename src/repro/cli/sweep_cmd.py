"""``repro sweep``: the crash-safe grid driver over the registries.

Typical shapes::

    repro sweep grid.json --run-root runs/grid --jobs 4 --timeout 120
    repro sweep grid.json --run-root runs/grid --resume
    repro sweep grid.json --run-root runs/grid --report

Exit codes: 0 when every cell is complete, 4 when cells were
quarantined or remain pending (the campaign is usable but not whole),
2 for typed spec/journal/config errors.
"""

from __future__ import annotations

import argparse

from repro import telemetry
from repro.resilience.retry import RetryPolicy


def add_subparsers(sub) -> None:
    p = sub.add_parser(
        "sweep",
        help="run a declared grid of experiments with resume/quarantine",
    )
    p.add_argument("spec", help="sweep spec JSON (see docs/SWEEPS.md)")
    p.add_argument("--run-root", required=True, metavar="DIR",
                   help="directory holding the journal and every cell's "
                        "run dir")
    p.add_argument("--jobs", type=int, default=1,
                   help="concurrent isolated worker processes")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-cell wall-clock budget in seconds "
                        "(default: unlimited)")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="attempts per cell before quarantine (default 3)")
    p.add_argument("--retry-delay", type=float, default=1.0, metavar="S",
                   help="base backoff between attempts (doubles per "
                        "retry, jittered per cell; default 1s)")
    p.add_argument("--resume", action="store_true",
                   help="continue a sweep whose journal already exists: "
                        "verified cells are skipped, unfinished ones "
                        "recomputed")
    p.add_argument("--retry-quarantined", action="store_true",
                   help="on resume, give quarantined cells a fresh "
                        "retry budget")
    p.add_argument("--report", action="store_true",
                   help="render the comparative report from what is on "
                        "disk; runs nothing")
    p.add_argument("--chaos", default=None, metavar="JSON|@FILE",
                   help="chaos-harness fault spec (testing: kill/hang/"
                        "corrupt chosen cells, or the sweep itself)")
    p.add_argument("--telemetry", choices=telemetry.MODES, default="off",
                   help="record sweep-level counters/spans in the parent")
    p.set_defaults(func=cmd_sweep)


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import (
        ChaosSpec,
        SweepRunner,
        SweepSpec,
        build_report,
        plan_sweep,
        render_report,
        write_report,
    )

    spec = SweepSpec.load(args.spec)
    if args.report:
        report = build_report(spec, args.run_root)
        write_report(report, args.run_root)
        print(render_report(report))
        return 0 if report["cells_complete"] == report["cells_total"] else 4

    if args.max_attempts < 1:
        raise ValueError("--max-attempts must be >= 1")
    if args.retry_delay < 0:
        raise ValueError("--retry-delay must be non-negative")
    chaos = ChaosSpec.parse(args.chaos)
    plan = plan_sweep(spec, args.run_root, resume=args.resume,
                      retry_quarantined=args.retry_quarantined)
    counts = plan.counts
    print(f"sweep {spec.name!r}: {len(plan.cells)} cells "
          f"({counts['cached']} cached, {counts['pending']} pending, "
          f"{counts['quarantined']} quarantined)")
    retry = RetryPolicy(max_attempts=args.max_attempts,
                        backoff_base=args.retry_delay,
                        backoff_cap=max(args.retry_delay * 16, 1.0),
                        jitter=0.1)
    runner = SweepRunner(plan, jobs=args.jobs, timeout=args.timeout,
                         retry=retry, chaos=chaos)
    result = runner.run()
    for outcome in result.quarantined:
        last = outcome.errors[-1] if outcome.errors else None
        detail = f": {last}" if last else ""
        print(f"quarantined: {outcome.cell_id}{detail}")
    report = build_report(spec, args.run_root)
    path = write_report(report, args.run_root)
    print(render_report(report))
    print(f"report written to {path}")
    return 0 if report["cells_complete"] == report["cells_total"] else 4
