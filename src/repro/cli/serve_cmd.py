"""``repro serve``: the online prediction + scheduling service.

Points at a model registry (a run-dir root that ``repro train
--run-dir`` wrote into), loads the promoted model, and serves
predictions + placement recommendations over local HTTP until
interrupted.  The watcher hot-swaps the model whenever the registry's
``CURRENT`` file names a new config hash — publish one with
``repro serve --publish HASH``.

``--self-test N`` runs the service against its own deterministic load
generator instead of waiting for traffic: N seeded payloads arrive on
the scheduler simulation's Poisson process, and the run dir collects
the load report plus the service's merged metrics.  CI's serve-smoke
job is exactly this mode.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal

from repro.cli._options import (
    add_spine_options,
    close_run,
    experiment_from_args,
    open_run,
)
from repro.config import ServeConfig


def add_subparsers(sub) -> None:
    s = ServeConfig(registry="_")
    p = sub.add_parser(
        "serve", help="online prediction + placement service"
    )
    p.add_argument("--registry", default="",
                   help="run-dir root holding finalized train runs")
    p.add_argument("--model-hash", default=s.model_hash,
                   help="config hash (prefix ok) to serve; default: the "
                        "registry's CURRENT file, else its single train "
                        "run")
    p.add_argument("--publish", metavar="HASH", default=None,
                   help="write HASH to the registry's CURRENT file and "
                        "exit (atomic promotion; a running server "
                        "hot-swaps to it)")
    p.add_argument("--host", default=s.host)
    p.add_argument("--port", type=int, default=s.port,
                   help="0 picks a free port (printed at startup)")
    p.add_argument("--max-batch", type=int, default=s.max_batch)
    p.add_argument("--batch-deadline-ms", type=float,
                   default=s.batch_deadline_ms)
    p.add_argument("--soft-inflight", type=int, default=s.soft_inflight,
                   help="above this many in-flight requests, answer "
                        "from the model-free degradation tiers")
    p.add_argument("--max-inflight", type=int, default=s.max_inflight,
                   help="above this, shed with a typed 503")
    p.add_argument("--strategy", default=s.strategy,
                   help="placement strategy (registry name)")
    p.add_argument("--watch-interval-ms", type=float,
                   default=s.watch_interval_ms)
    p.add_argument("--slo-target", type=float, default=s.slo_target,
                   help="SLO availability target in (0, 1), e.g. 0.99; "
                        "0 disables SLO-driven admission")
    p.add_argument("--slo-threshold-ms", type=float,
                   default=s.slo_threshold_ms,
                   help="latency above this burns SLO error budget")
    p.add_argument("--slo-degrade-burn", type=float,
                   default=s.slo_degrade_burn,
                   help="burn-rate multiple that degrades service")
    p.add_argument("--slo-shed-burn", type=float,
                   default=s.slo_shed_burn,
                   help="sustained burn-rate multiple that sheds")
    p.add_argument("--flight-events", type=int, default=s.flight_events,
                   help="flight-recorder ring capacity (0 disables)")
    p.add_argument("--self-test", dest="selftest_requests", type=int,
                   default=s.selftest_requests, metavar="N",
                   help="serve N generated requests to myself, print the "
                        "load report, and exit")
    p.add_argument("--selftest-rate", type=float, default=s.selftest_rate,
                   help="self-test arrival rate (requests/second)")
    p.add_argument("--seed", type=int, default=s.seed)
    add_spine_options(p)
    p.set_defaults(func=cmd_serve)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ModelManager, PredictionService, publish_model

    if getattr(args, "publish", None):
        if not args.registry:
            raise ValueError("--publish requires --registry")
        path = publish_model(args.registry, args.publish)
        print(f"published {args.publish} to {path}")
        return 0

    experiment = experiment_from_args(args)
    cfg = experiment.config
    manager = ModelManager(cfg.registry,
                           poll_interval_s=cfg.watch_interval_ms / 1e3)
    manager.promote(manager.resolve_hash(cfg.model_hash))
    service = PredictionService(
        manager,
        strategy=cfg.strategy,
        max_batch=cfg.max_batch,
        batch_deadline_s=cfg.batch_deadline_ms / 1e3,
        soft_inflight=cfg.soft_inflight,
        max_inflight=cfg.max_inflight,
        slo=_build_slo(cfg),
        flight_events=cfg.flight_events,
    )
    run = open_run(args, experiment)
    if run is not None and cfg.flight_events:
        service.flight_path = run.file("flight.json")
    try:
        if cfg.selftest_requests:
            report = asyncio.run(_self_test(service, cfg))
            print(json.dumps(report, indent=2))
            if run is not None:
                metrics = {"load_report": report}
                if service.admission.slo is not None:
                    metrics["slo"] = service.admission.slo.snapshot()
                run.save_metrics(metrics)
                run.save_json("serve_metrics.json",
                              service.metrics_payload())
                run.save_text("metrics.prom",
                              str(service.prometheus_payload()))
                service.dump_flight("selftest-complete")
        else:
            asyncio.run(_serve_forever(service, cfg, run))
    finally:
        close_run(run)
    return 0


def _build_slo(cfg):
    """The configured SLO admission policy, or None (slo_target == 0)."""
    if not cfg.slo_target:
        return None
    from repro.telemetry.slo import SLOShedPolicy, SLOSpec

    spec = SLOSpec(
        name="serve-predict-latency",
        objective="latency",
        target=cfg.slo_target,
        histogram="serve.http.predict.seconds",
        threshold_s=cfg.slo_threshold_ms / 1e3,
        description="fraction of /predict answers under the latency "
                    "threshold",
    )
    return SLOShedPolicy(spec, degrade_burn=cfg.slo_degrade_burn,
                         shed_burn=cfg.slo_shed_burn)


async def _self_test(service, cfg) -> dict:
    """Start the service, drive it with the seeded load generator."""
    from repro.serve import run_load, synthesize_payloads

    payloads = synthesize_payloads(cfg.selftest_requests, seed=cfg.seed)
    host, port = await service.start(cfg.host, cfg.port)
    service.manager.start_watching()
    print(f"self-test: {len(payloads)} requests against "
          f"http://{host}:{port}")
    try:
        report = await run_load(host, port, payloads,
                                rate_per_second=cfg.selftest_rate,
                                seed=cfg.seed)
    finally:
        await service.stop()
    return report.to_dict()


async def _serve_forever(service, cfg, run) -> None:
    host, port = await service.start(cfg.host, cfg.port)
    service.manager.start_watching()
    active = service.manager.active
    print(f"serving model {active.config_hash[:12]} "
          f"({active.predictor.kind}) on http://{host}:{port}")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(sig, stop.set)
    try:
        await stop.wait()
    finally:
        print("shutting down...")
        # Dump before the drain: the ring as it stood when the signal
        # arrived is the post-mortem state of interest.
        service.dump_flight("shutdown-signal")
        await service.stop()
        if run is not None:
            run.save_json("serve_metrics.json", service.metrics_payload())
            run.save_text("metrics.prom",
                          str(service.prometheus_payload()))
