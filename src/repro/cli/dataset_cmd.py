"""``repro generate`` (alias ``dataset``) and ``repro report``.

Thin wrappers: build the typed config, call the dataset layer, hand
artifacts to the run directory.  All science lives in
:mod:`repro.dataset`.
"""

from __future__ import annotations

import argparse

from repro.cli._options import (
    add_spine_options,
    close_run,
    experiment_from_args,
    make_cache,
    open_run,
    print_cache_stats,
)
from repro.config import DatasetConfig, ReportConfig


def add_subparsers(sub) -> None:
    d = DatasetConfig()
    p = sub.add_parser("generate", aliases=["dataset"],
                       help="generate the MP-HPC dataset CSV")
    p.add_argument("--inputs-per-app", type=int, default=d.inputs_per_app)
    p.add_argument("--seed", type=int, default=d.seed)
    p.add_argument("--output", default=d.output)
    p.add_argument("--jobs", type=int, default=d.jobs,
                   help="worker processes for shard generation "
                        "(0 = all cores); never changes the output")
    p.add_argument("--cache-dir", default=d.cache_dir,
                   help="content-addressed shard cache directory; warm "
                        "reruns skip profiling entirely")
    add_spine_options(p)
    p.set_defaults(func=cmd_generate)

    r = ReportConfig()
    p = sub.add_parser("report",
                       help="dataset summary report, or a run-dir "
                            "telemetry summary when RUN is given")
    p.add_argument("run", nargs="?", metavar="RUN",
                   help="a finalized run directory: summarize its "
                        "manifest, metrics.json, and trace.json instead "
                        "of generating a dataset report")
    p.add_argument("--inputs-per-app", type=int, default=r.inputs_per_app)
    p.add_argument("--seed", type=int, default=r.seed)
    add_spine_options(p)
    p.set_defaults(func=cmd_report)


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.dataset import generate_dataset

    experiment = experiment_from_args(args)
    cfg = experiment.config
    cache = make_cache(cfg.cache_dir)
    dataset = generate_dataset(inputs_per_app=cfg.inputs_per_app,
                               seed=cfg.seed, jobs=cfg.jobs, cache=cache)
    dataset.save(cfg.output)
    print(f"wrote {dataset.num_rows} rows x "
          f"{dataset.frame.num_columns} columns to {cfg.output}")
    print_cache_stats(cache)
    run = open_run(args, experiment)
    if run is not None:
        run.attach(cfg.output)
        run.save_metrics({"rows": dataset.num_rows,
                          "columns": dataset.frame.num_columns})
    close_run(run)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.dataset import generate_dataset
    from repro.dataset.report import dataset_report

    if args.run:
        return _report_run(args.run)
    experiment = experiment_from_args(args)
    cfg = experiment.config
    dataset = generate_dataset(inputs_per_app=cfg.inputs_per_app,
                               seed=cfg.seed)
    report = dataset_report(dataset)
    print(report)
    run = open_run(args, experiment)
    if run is not None:
        run.file("report.txt").write_text(report + "\n")
        run.save_metrics({"rows": dataset.num_rows,
                          "columns": dataset.frame.num_columns})
    close_run(run)
    return 0


def _report_run(path: str) -> int:
    """Summarize a finalized run directory's saved telemetry."""
    from repro import perf, telemetry
    from repro.artifacts import load_run

    run = load_run(path)

    def _artifact(name: str):
        return run.read_json(name) if name in run.manifest["files"] else None

    print(telemetry.render_run_report(
        run.manifest, _artifact("metrics.json"), _artifact("trace.json")
    ))
    perf_report = _artifact("perf_report.json")
    if perf_report is not None:
        print()
        print(perf.render_report(perf.validate_report(perf_report), top=3))
    return 0
