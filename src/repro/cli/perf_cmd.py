"""``repro perf`` — profile the reproduction's own hot paths.

Runs a scaled-down schedule or predict workload under the deterministic
self-profiler (:mod:`repro.perf`), prints the attribution summary, and
— with ``--run-dir`` — saves the checksummed ``perf_report.json`` into
the run's manifest inventory.  ``repro report <run-dir>`` renders the
top self-time entries back out of any run that carries one.

The workloads are deliberately synthetic and seed-deterministic: the
point is attribution (which functions burn the time, which sites churn
allocations), not science, so they mirror the shapes of the
``benchmarks/`` microbenchmarks rather than the full experiments.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import perf
from repro.cli._options import (
    add_spine_options,
    close_run,
    experiment_from_args,
    open_run,
)
from repro.config import PerfConfig

#: perf_report.json artifact name inside a run directory.
REPORT_NAME = "perf_report.json"


def add_subparsers(sub) -> None:
    d = PerfConfig()
    p = sub.add_parser(
        "perf",
        help="profile the simulator/predictor hot paths; write a "
             "checksummed perf_report.json",
    )
    p.add_argument("--workload", choices=("sched", "predict"),
                   default=d.workload,
                   help="which hot path to profile")
    p.add_argument("--jobs", type=int, default=d.jobs,
                   help="jobs in the sched workload")
    p.add_argument("--rows", type=int, default=d.rows,
                   help="rows scored in the predict workload")
    p.add_argument("--seed", type=int, default=d.seed)
    p.add_argument("--top", type=int, default=d.top,
                   help="entries kept per report section")
    add_spine_options(p)
    p.set_defaults(func=cmd_perf)


def _sched_workload(jobs: int, seed: int):
    """A contended EASY-backfilling run (the simulator's hot loop)."""
    from repro.arch.machines import SYSTEM_ORDER
    from repro.sched import ClusterState, Job, Scheduler, strategy_by_name

    rng = np.random.default_rng(seed)
    t = 0.0
    workload = []
    for i in range(jobs):
        t += float(rng.exponential(4.0))
        rpv = rng.uniform(0.5, 3.0, size=len(SYSTEM_ORDER))
        base = float(rng.uniform(10.0, 600.0))
        workload.append(Job(
            job_id=i, app="CoMD", uses_gpu=bool(rng.integers(2)),
            nodes_required=int(rng.integers(1, 16)),
            runtimes={s: base * float(r)
                      for s, r in zip(SYSTEM_ORDER, rpv)},
            submit_time=t,
            predicted_rpv=rpv * rng.uniform(0.9, 1.1, size=rpv.shape),
            true_rpv=rpv,
        ))
    cluster = ClusterState({s: 32 for s in SYSTEM_ORDER})
    scheduler = Scheduler(strategy_by_name("model"), cluster)
    return lambda: scheduler.run(workload)


def _predict_workload(rows: int, seed: int):
    """Flat-ensemble inference over a packed feature matrix."""
    from repro.ml.boosting import GradientBoostedTrees

    rng = np.random.default_rng(seed)
    X = rng.normal(size=(2000, 12))
    Y = rng.normal(size=(2000, 4))
    model = GradientBoostedTrees(n_estimators=40, max_depth=5,
                                 random_state=seed).fit(X, Y)
    Xb = model.binner_.transform(rng.normal(size=(rows, 12)))
    model.predict_binned(Xb)  # build the flat ensemble outside the profile
    return lambda: model.predict_binned(Xb)


def cmd_perf(args: argparse.Namespace) -> int:
    experiment = experiment_from_args(args)
    cfg = experiment.config
    if cfg.workload == "sched":
        workload = _sched_workload(cfg.jobs, cfg.seed)
    else:
        workload = _predict_workload(cfg.rows, cfg.seed)
    report = perf.collect(
        workload, label=cfg.workload, top=cfg.top, meta=cfg.to_dict()
    )
    print(perf.render_report(report, top=3))
    run = open_run(args, experiment)
    if run is not None:
        run.save_json(REPORT_NAME, report)
    close_run(run)
    return 0
