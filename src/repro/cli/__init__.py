"""Command-line interface.

Exposes the reproduction's main workflows as ``repro <subcommand>``:

* ``generate``  — build the MP-HPC dataset and write it as CSV (alias
  ``dataset``; supports ``--jobs N`` parallel generation and a
  ``--cache-dir`` content-addressed shard cache, both output-invariant).
* ``train``     — train a predictor and save it (pickle).
* ``evaluate``  — the Fig. 2 four-model comparison.
* ``importance``— the Fig. 6 feature-importance report.
* ``profile``   — profile one (app, machine, scale) run; print counters.
* ``predict``   — profile a run and predict its RPV with a saved model.
* ``schedule``  — the Section VII scheduling experiment.
* ``serve``     — online prediction + placement service: micro-batched
  JSON-over-HTTP predictions with model hot-swap and admission control
  (see :mod:`repro.serve` and ``docs/SERVING.md``).
* ``sweep``     — run a declared grid over the registries with
  journal-backed resume, per-cell timeouts, retry, and quarantine
  (see :mod:`repro.sweep` and ``docs/SWEEPS.md``).
* ``perf``      — profile the simulator/predictor hot paths with the
  deterministic self-profiler; writes a checksummed
  ``perf_report.json`` whose top entries ``repro report`` renders
  (see :mod:`repro.perf` and ``docs/PERF.md``).

Every subcommand is a thin module under :mod:`repro.cli` that builds a
typed :class:`~repro.config.ExperimentConfig` and calls library entry
points.  Three flags are shared by all of them (the experiment spine):
``--save-config FILE`` writes the run's config, ``--config FILE``
replays a saved config bit-identically, and ``--run-dir DIR`` collects
the run's artifacts under a provenance-stamped directory with a
``manifest.json`` (see :mod:`repro.artifacts`).

Every command is deterministic given ``--seed``.  See ``repro
<subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from repro.cli import (
        dataset_cmd,
        evaluate_cmd,
        perf_cmd,
        profile_cmd,
        schedule_cmd,
        serve_cmd,
        sweep_cmd,
        train_cmd,
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cross-architecture performance prediction "
                    "(IPPS 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    dataset_cmd.add_subparsers(sub)
    train_cmd.add_subparsers(sub)
    evaluate_cmd.add_subparsers(sub)
    profile_cmd.add_subparsers(sub)
    schedule_cmd.add_subparsers(sub)
    serve_cmd.add_subparsers(sub)
    sweep_cmd.add_subparsers(sub)
    perf_cmd.add_subparsers(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    Expected failures — unknown registry names, bad config values,
    missing files — are typed (:class:`~repro.errors.ReproError`
    subclasses or ``ValueError``) and exit 2 with one ``error:`` line on
    stderr.  Anything else is a bug and tracebacks normally.
    """
    from repro import telemetry
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    telemetry.configure(getattr(args, "telemetry", None))
    try:
        return args.func(args)
    except (ReproError, ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # main() may be called repeatedly in one process (tests); leave
        # no telemetry state behind for the next invocation.
        telemetry.configure("off")
        telemetry.reset()


if __name__ == "__main__":
    raise SystemExit(main())
