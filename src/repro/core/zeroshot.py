"""DescriptorConditionedPredictor: zero-shot machine scoring.

:class:`~repro.core.predictor.CrossArchPredictor` answers "which of the
four training machines is fastest" — its RPV output is *indexed* by the
frozen ``SYSTEM_ORDER``, so a fifth machine has no slot.  This model
answers the harder question from the generalization literature
(PAPERS.md: Li et al.; Stevens & Klöckner): given a profile and an
explicit :class:`~repro.arch.descriptor.MachineDescriptor`, predict the
time ratio ``t_target / t_source`` for *any* target machine, seen in
training or not.  Rankings over an arbitrary candidate set fall out of
one argsort over those scalars, and the quantile-head/ensemble spread
doubles as a per-machine uncertainty for risk-aware scheduling.

Trained on the schema-v2 long format
(:class:`~repro.dataset.longform.LongformDataset`); scored either on
long feature rows directly or on v1 21-column wide rows via
:meth:`predict_wide`, which expands each row against a descriptor list
(that is the serve path for inline-descriptor requests).
"""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np

from repro.arch.descriptor import MachineDescriptor, descriptor_from_spec
from repro.arch.machines import MACHINES, SYSTEM_ORDER
from repro.dataset.features import FeatureNormalizer, derive_feature_frame
from repro.dataset.longform import LongformDataset
from repro.dataset.schema import (
    ARCH_COLUMNS,
    COUNTER_FEATURES,
    FEATURE_COLUMNS,
    LONG_FEATURE_COLUMNS,
)
from repro.frame import Frame
from repro.ml import MODELS

__all__ = ["DescriptorConditionedPredictor"]

#: Default quantile levels for the boosting uncertainty band.
DEFAULT_QUANTILE_HEADS = (0.25, 0.75)


class DescriptorConditionedPredictor:
    """Predicts ``t_target / t_source`` from counters + machine descriptors.

    Parameters
    ----------
    model:
        Registered model name.  ``"xgboost"`` (default) automatically
        fits quantile heads so :meth:`predict_with_uncertainty` works;
        ``"forest"`` gets uncertainty from its bagging spread for free.
    random_state, **model_kwargs:
        Forwarded to the model factory.
    """

    def __init__(
        self,
        model: str = "xgboost",
        random_state: int | None = 0,
        **model_kwargs,
    ):
        if model == "xgboost" and "quantile_heads" not in model_kwargs:
            model_kwargs["quantile_heads"] = DEFAULT_QUANTILE_HEADS
        self.kind = model
        self.model = MODELS[model](random_state=random_state,
                                   **model_kwargs)
        self.feature_columns = tuple(LONG_FEATURE_COLUMNS)
        self.normalizer: FeatureNormalizer | None = None
        self.train_targets: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        longform: LongformDataset,
        model: str = "xgboost",
        rows: np.ndarray | None = None,
        **kwargs,
    ) -> "DescriptorConditionedPredictor":
        """Fit on (a subset of) a schema-v2 long-format dataset."""
        predictor = cls(model=model, **kwargs)
        predictor.fit(longform, rows=rows)
        return predictor

    def fit(
        self, longform: LongformDataset, rows: np.ndarray | None = None
    ) -> "DescriptorConditionedPredictor":
        frame = (longform.frame if rows is None
                 else longform.frame.take(rows))
        X = frame.to_matrix(list(longform.feature_columns))
        y = np.asarray(frame[longform.target_column], dtype=np.float64)
        self.model.fit(X, y)
        self.normalizer = longform.normalizer
        self.feature_columns = tuple(longform.feature_columns)
        self.train_targets = tuple(longform.targets)
        return self

    # ------------------------------------------------------------------
    @property
    def has_uncertainty(self) -> bool:
        return bool(getattr(self.model, "has_uncertainty", False)) or \
            hasattr(self.model, "predict_per_tree")

    def _check(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.feature_columns):
            raise ValueError(
                f"X has shape {X.shape}, expected "
                f"(n, {len(self.feature_columns)})"
            )
        return X

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted ``rel_time`` per long feature row, shape ``(n,)``."""
        return self.model.predict(self._check(X))[:, 0]

    def predict_with_uncertainty(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(rel_time, spread)`` per long feature row, each ``(n,)``."""
        X = self._check(X)
        if getattr(self.model, "has_uncertainty", False):
            mean, spread = self.model.predict_with_uncertainty(X)
        elif hasattr(self.model, "predict_per_tree"):
            per_tree = self.model.predict_per_tree(X)
            mean, spread = per_tree.mean(axis=0), per_tree.std(axis=0)
        else:
            raise TypeError(
                f"{self.kind} model has no uncertainty estimate"
            )
        return mean[:, 0], spread[:, 0]

    # ------------------------------------------------------------------
    def _expand_wide(
        self,
        X_wide: np.ndarray,
        machines: "list[MachineDescriptor] | tuple[MachineDescriptor, ...]",
    ) -> np.ndarray:
        """v1 21-column rows × descriptor list → long feature matrix.

        Each wide row contributes ``len(machines)`` long rows (machine
        order preserved); the source descriptor is recovered from the
        row's arch one-hot.
        """
        if not machines:
            raise ValueError("need at least one machine descriptor")
        X_wide = np.asarray(X_wide, dtype=np.float64)
        if X_wide.ndim != 2 or X_wide.shape[1] != len(FEATURE_COLUMNS):
            raise ValueError(
                f"X has shape {X_wide.shape}, expected "
                f"(n, {len(FEATURE_COLUMNS)}) wide feature rows"
            )
        n = X_wide.shape[0]
        n_counter = len(COUNTER_FEATURES)
        counters = X_wide[:, :n_counter]
        onehot = X_wide[:, n_counter:n_counter + len(ARCH_COLUMNS)]
        if not np.isclose(onehot.sum(axis=1), 1.0).all():
            raise ValueError(
                "wide rows must one-hot exactly one source machine"
            )
        src_idx = onehot.argmax(axis=1)
        src_vecs = np.vstack([
            descriptor_from_spec(MACHINES[name]).vector()
            for name in SYSTEM_ORDER
        ])
        tgt_matrix = np.vstack([d.vector() for d in machines])
        m = len(machines)
        return np.hstack([
            np.repeat(counters, m, axis=0),
            np.repeat(src_vecs[src_idx], m, axis=0),
            np.tile(tgt_matrix, (n, 1)),
        ])

    def predict_wide(
        self,
        X_wide: np.ndarray,
        machines: "list[MachineDescriptor] | tuple[MachineDescriptor, ...]",
    ) -> np.ndarray:
        """Score v1 wide feature rows against a descriptor list.

        Returns predicted ``t_machine / t_source`` ratios, shape
        ``(n, len(machines))`` — lower is faster, and the machines need
        not have existed at training time.
        """
        X_long = self._expand_wide(X_wide, machines)
        return self.predict(X_long).reshape(-1, len(machines))

    def predict_wide_with_uncertainty(
        self,
        X_wide: np.ndarray,
        machines: "list[MachineDescriptor] | tuple[MachineDescriptor, ...]",
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(scores, spread)`` for wide rows × descriptors."""
        X_long = self._expand_wide(X_wide, machines)
        mean, spread = self.predict_with_uncertainty(X_long)
        m = len(machines)
        return mean.reshape(-1, m), spread.reshape(-1, m)

    def score_record(
        self,
        record: dict,
        machines: "list[MachineDescriptor] | tuple[MachineDescriptor, ...]",
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(scores, spread)`` over *machines* for one raw run record."""
        if self.normalizer is None:
            raise RuntimeError("score_record called before fit")
        frame = Frame.from_records([record])
        featured, _ = derive_feature_frame(frame, normalizer=self.normalizer)
        X_wide = featured.to_matrix(list(FEATURE_COLUMNS))
        scores, spread = self.predict_wide_with_uncertainty(
            X_wide, machines
        )
        return scores[0], spread[0]

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        Path(path).write_bytes(pickle.dumps(self))

    @classmethod
    def load(cls, path: str | Path) -> "DescriptorConditionedPredictor":
        obj = pickle.loads(Path(path).read_bytes())
        if not isinstance(obj, cls):
            raise TypeError(
                f"{path} does not contain a DescriptorConditionedPredictor"
            )
        return obj
