"""Training protocol (Section VI-A/B).

"During this training, 10% of the data is set aside as a testing data
set, while the other 90% is shown to the model as a training data set.
While training on the training data set, the data is further split into
five folds as part of k-fold cross-validation."

Model selection then optionally retrains every model on the top
features reported by the tree models (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.dataset.generate import MPHPCDataset
from repro.dataset.schema import FEATURE_COLUMNS
from repro.core.predictor import CrossArchPredictor
from repro.ml import (
    cross_validate,
    mean_absolute_error,
    same_order_score,
    train_test_split,
)
from repro.parallel import run_tasks

__all__ = [
    "MODEL_FACTORIES",
    "TrainedModel",
    "train_model",
    "train_all_models",
    "select_top_features",
]

#: The paper's four-model comparison (Fig. 2), in presentation order.
MODEL_FACTORIES: tuple[str, ...] = ("mean", "linear", "forest", "xgboost")


@dataclass
class TrainedModel:
    """One trained model plus its evaluation under the paper's protocol.

    Attributes
    ----------
    predictor:
        Fitted :class:`CrossArchPredictor`.
    test_mae, test_sos:
        Metrics on the held-out 10% test split (the Fig. 2 numbers).
    cv_mae, cv_sos:
        Mean 5-fold cross-validation metrics within the 90% train split.
    train_rows, test_rows:
        The split indices (reproducible from the seed).
    """

    name: str
    predictor: CrossArchPredictor
    test_mae: float
    test_sos: float
    cv_mae: float
    cv_sos: float
    train_rows: np.ndarray = field(repr=False, default=None)
    test_rows: np.ndarray = field(repr=False, default=None)


def train_model(
    dataset: MPHPCDataset,
    model: str = "xgboost",
    seed: int = 42,
    test_fraction: float = 0.1,
    n_folds: int = 5,
    run_cv: bool = True,
    feature_columns: tuple[str, ...] = FEATURE_COLUMNS,
    **model_kwargs,
) -> TrainedModel:
    """Train one model with the paper's split + CV protocol."""
    X = dataset.frame.to_matrix(list(feature_columns))
    Y = dataset.Y()
    train_rows, test_rows = train_test_split(
        len(X), test_fraction, random_state=seed
    )

    cv_mae = cv_sos = float("nan")
    if run_cv:
        with telemetry.span("train.cv", model=model, folds=n_folds):
            cv = cross_validate(
                lambda: CrossArchPredictor(
                    model=model, feature_columns=feature_columns,
                    random_state=seed, **model_kwargs
                ).model,
                X[train_rows],
                Y[train_rows],
                n_splits=n_folds,
                random_state=seed,
            )
        cv_mae = cv["mae"]
        cv_sos = cv.get("sos", float("nan"))

    predictor = CrossArchPredictor(
        model=model, feature_columns=feature_columns,
        random_state=seed, **model_kwargs
    )
    with telemetry.span("train.fit", model=model, rows=len(train_rows)):
        predictor.fit(dataset, rows=train_rows)
    telemetry.counter("train.models_fit").inc()
    pred = predictor.predict(X[test_rows])
    return TrainedModel(
        name=model,
        predictor=predictor,
        test_mae=mean_absolute_error(Y[test_rows], pred),
        test_sos=same_order_score(Y[test_rows], pred),
        cv_mae=cv_mae,
        cv_sos=cv_sos,
        train_rows=train_rows,
        test_rows=test_rows,
    )


def _train_model_task(task) -> TrainedModel:
    """Module-level worker for the ``train_all_models`` fan-out."""
    dataset, name, seed, run_cv, feature_columns, model_kwargs = task
    return train_model(
        dataset, model=name, seed=seed, run_cv=run_cv,
        feature_columns=feature_columns, **model_kwargs,
    )


def train_all_models(
    dataset: MPHPCDataset,
    seed: int = 42,
    run_cv: bool = False,
    feature_columns: tuple[str, ...] = FEATURE_COLUMNS,
    jobs: int = 1,
    model_kwargs: dict | None = None,
) -> dict[str, TrainedModel]:
    """Train the paper's four models on identical splits (Fig. 2).

    ``jobs > 1`` fans the four independent trainings out over a process
    pool; every training is a pure function of (dataset, model, seed),
    so the result is identical to the sequential run — the same
    determinism contract :func:`repro.dataset.generate_dataset` keeps.
    ``model_kwargs`` (e.g. smaller tree counts) apply to the tree models
    only, mirroring :func:`repro.core.evaluation.model_comparison_study`.
    """
    tasks = [
        (dataset, name, seed, run_cv, feature_columns,
         (model_kwargs or {}) if name in ("forest", "xgboost") else {})
        for name in MODEL_FACTORIES
    ]
    trained = run_tasks(_train_model_task, tasks, jobs=jobs)
    return dict(zip(MODEL_FACTORIES, trained))


def select_top_features(
    trained: TrainedModel | CrossArchPredictor, k: int = 12
) -> tuple[str, ...]:
    """Top-*k* features by average gain from a trained tree model.

    Section VI-B: "After training we select the best set of features
    using those reported by XGBoost and the decision forest".  The
    returned tuple feeds ``feature_columns`` of a retraining pass.
    """
    predictor = trained.predictor if isinstance(trained, TrainedModel) else trained
    importances = predictor.feature_importances()
    if k < 1 or k > len(importances):
        raise ValueError(f"k must be in [1, {len(importances)}]")
    return tuple(list(importances)[:k])
