"""CrossArchPredictor: the user-facing counters-to-RPV model.

Wraps a regression model behind the feature pipeline so downstream code
(the scheduler, the examples) can go straight from a profiled run to a
predicted relative-performance vector:

>>> # doctest-style sketch; see examples/quickstart.py for a real run
>>> # predictor = CrossArchPredictor.train(dataset)
>>> # rpv = predictor.predict_record(run_record(profile))
"""

from __future__ import annotations

import pickle
import time
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.arch.machines import SYSTEM_ORDER
from repro.errors import PackingError
from repro.dataset.features import (
    REQUIRED_RECORD_FIELDS,
    FeatureNormalizer,
    derive_feature_frame,
)
from repro.dataset.generate import MPHPCDataset
from repro.dataset.schema import FEATURE_COLUMNS, FEATURE_LABELS
from repro.frame import Frame
from repro.ml import MODELS

__all__ = ["CrossArchPredictor"]


def _make_model(kind: str, random_state: int | None, **kwargs):
    """Instantiate a registered model factory (typed error on a miss)."""
    return MODELS[kind](random_state=random_state, **kwargs)


class CrossArchPredictor:
    """Predicts RPVs (relative to the slowest system) from run counters.

    Parameters
    ----------
    model:
        One of ``"xgboost"`` (default; the paper's best model),
        ``"forest"``, ``"linear"``, ``"mean"``.
    feature_columns:
        Feature subset to use (default: all 21; pass the output of
        :func:`repro.core.pipeline.select_top_features` to retrain on
        the most important features, Section VI-B).
    random_state, **model_kwargs:
        Forwarded to the underlying model.
    """

    def __init__(
        self,
        model: str = "xgboost",
        feature_columns: tuple[str, ...] = FEATURE_COLUMNS,
        random_state: int | None = 0,
        **model_kwargs,
    ):
        self.kind = model
        self.feature_columns = tuple(feature_columns)
        self.model = _make_model(model, random_state, **model_kwargs)
        self.normalizer: FeatureNormalizer | None = None
        self.systems = tuple(SYSTEM_ORDER)

    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        dataset: MPHPCDataset,
        model: str = "xgboost",
        rows: np.ndarray | None = None,
        **kwargs,
    ) -> "CrossArchPredictor":
        """Fit a predictor on (a subset of) the MP-HPC dataset."""
        predictor = cls(model=model, **kwargs)
        predictor.fit(dataset, rows=rows)
        return predictor

    def fit(
        self, dataset: MPHPCDataset, rows: np.ndarray | None = None
    ) -> "CrossArchPredictor":
        frame = dataset.frame if rows is None else dataset.frame.take(rows)
        X = frame.to_matrix(list(self.feature_columns))
        Y = frame.to_matrix(list(dataset.target_columns))
        self.model.fit(X, Y)
        self.normalizer = dataset.normalizer
        return self

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict RPVs from an already-featurized matrix."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.feature_columns):
            raise ValueError(
                f"X has shape {X.shape}, expected (n, {len(self.feature_columns)})"
            )
        # Instrumented here — at the batch boundary — so the flat-
        # ensemble kernel underneath stays telemetry-free.
        if telemetry.metrics_enabled():
            t0 = time.perf_counter()
            result = self.model.predict(X)
            telemetry.histogram("predict.batch_seconds").observe(
                time.perf_counter() - t0
            )
            telemetry.histogram(
                "predict.batch_rows", telemetry.SIZE_BUCKETS
            ).observe(X.shape[0])
            return result
        return self.model.predict(X)

    def pack(self, X: np.ndarray) -> np.ndarray:
        """Pack a float feature matrix into uint8 bin codes, once.

        Tree models discretize features into at most 256 quantile bins
        before any traversal, so repeated scoring of the same rows
        (every scheduler wake-up, every sweep cell, every serve
        hot-batch) can skip both the quantile transform and the float64
        matrix entirely: a packed matrix streams 1 byte per cell
        instead of 8.  Feed the result to :meth:`predict_packed`.

        Raises :class:`repro.errors.PackingError` when the underlying
        model has no binner (linear/mean models traverse nothing, so
        there is no packing to do).
        """
        binner = getattr(self.model, "binner_", None)
        if binner is None:
            raise PackingError(
                f"{self.kind} model has no feature binner; "
                "pack() applies to tree models only"
            )
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.feature_columns):
            raise PackingError(
                f"X has shape {X.shape}, expected "
                f"(n, {len(self.feature_columns)})"
            )
        return binner.transform(X)

    def predict_packed(self, Xb: np.ndarray) -> np.ndarray:
        """Predict RPVs from a matrix packed by :meth:`pack`.

        Bit-identical to ``predict`` on the floats the codes came from
        (the binning is exactly the transform ``predict`` applies
        first); only the repeated quantile searchsorted is skipped.
        """
        if not hasattr(self.model, "predict_binned"):
            raise PackingError(
                f"{self.kind} model cannot score packed features"
            )
        Xb = np.asarray(Xb)
        if Xb.dtype != np.uint8:
            raise PackingError(
                f"packed matrix must be uint8 bin codes, got {Xb.dtype}"
            )
        if Xb.ndim != 2 or Xb.shape[1] != len(self.feature_columns):
            raise PackingError(
                f"packed matrix has shape {Xb.shape}, expected "
                f"(n, {len(self.feature_columns)})"
            )
        if telemetry.metrics_enabled():
            t0 = time.perf_counter()
            result = self.model.predict_binned(Xb)
            telemetry.histogram("predict.batch_seconds").observe(
                time.perf_counter() - t0
            )
            telemetry.histogram(
                "predict.batch_rows", telemetry.SIZE_BUCKETS
            ).observe(Xb.shape[0])
            return result
        return self.model.predict_binned(Xb)

    def predict_frame(self, frame: Frame) -> np.ndarray:
        """Predict RPVs for rows of a frame containing feature columns."""
        return self.predict(frame.to_matrix(list(self.feature_columns)))

    def predict_record(self, record: dict) -> np.ndarray:
        """Predict the RPV for one raw run record.

        *record* is the output of :func:`repro.hatchet_lite.run_record`
        (canonical counters + run metadata).  Features are derived with
        the normalizer fitted during training, matching the deployment
        path: profile once on one machine, predict everywhere.

        Raises ``KeyError`` when a required counter field is absent and
        ``ValueError`` when one is NaN or ±inf (a truncated or garbled
        measurement) — defined failure modes that
        :class:`repro.resilience.ResilientPredictor` turns into graceful
        degradation instead.
        """
        if self.normalizer is None:
            raise RuntimeError("predict_record called before fit")
        missing = [f for f in REQUIRED_RECORD_FIELDS if f not in record]
        if missing:
            raise KeyError(
                f"record is missing counter fields: {sorted(missing)}"
            )
        bad = [
            f for f in REQUIRED_RECORD_FIELDS
            if not np.isfinite(np.asarray(record[f], dtype=np.float64))
        ]
        if bad:
            raise ValueError(
                f"record has non-finite counter values: {sorted(bad)}"
            )
        frame = Frame.from_records([record])
        featured, _ = derive_feature_frame(frame, normalizer=self.normalizer)
        return self.predict_frame(featured)[0]

    def rank_systems(self, record: dict) -> list[str]:
        """System names ordered fastest to slowest for one run record."""
        order = np.argsort(self.predict_record(record), kind="stable")
        return [self.systems[i] for i in order]

    @property
    def has_uncertainty(self) -> bool:
        """Whether the wrapped model exposes an uncertainty estimate."""
        return bool(getattr(self.model, "has_uncertainty", False)) or \
            hasattr(self.model, "predict_per_tree")

    def predict_with_uncertainty(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Predict RPVs with a per-component uncertainty estimate.

        Models advertising ``has_uncertainty`` answer through the
        uncertainty protocol — ensemble spread for forests, the
        inter-quantile half-width for boosting fitted with
        ``quantile_heads`` — and the mean stays bit-identical to
        :meth:`predict` (uncertainty is a second output, never a
        different answer).  Returns ``(mean, spread)``, both shaped
        ``(n, n_outputs)``.  A scheduler can use the spread to fall
        back to safer placements when the model is unsure which system
        wins.
        """
        model = self._uncertainty_model()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.feature_columns):
            raise ValueError(
                f"X has shape {X.shape}, expected (n, {len(self.feature_columns)})"
            )
        if model is not None:
            return model.predict_with_uncertainty(X)
        per_tree = self.model.predict_per_tree(X)
        return per_tree.mean(axis=0), per_tree.std(axis=0)

    def predict_packed_with_uncertainty(
        self, Xb: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(mean, spread)`` from a matrix packed by :meth:`pack`.

        The mean is bit-identical to :meth:`predict_packed` on the same
        codes (same flat-ensemble traversal, same accumulation order).
        """
        model = self._uncertainty_model()
        if model is None or not hasattr(
            model, "predict_binned_with_uncertainty"
        ):
            raise PackingError(
                f"{self.kind} model cannot score packed features "
                "with uncertainty"
            )
        Xb = np.asarray(Xb)
        if Xb.dtype != np.uint8:
            raise PackingError(
                f"packed matrix must be uint8 bin codes, got {Xb.dtype}"
            )
        if Xb.ndim != 2 or Xb.shape[1] != len(self.feature_columns):
            raise PackingError(
                f"packed matrix has shape {Xb.shape}, expected "
                f"(n, {len(self.feature_columns)})"
            )
        return model.predict_binned_with_uncertainty(Xb)

    def _uncertainty_model(self):
        """The wrapped model if it speaks the uncertainty protocol.

        Returns None when only the legacy ``predict_per_tree`` fallback
        applies; raises the documented ``TypeError`` when neither path
        exists (e.g. boosting without quantile heads, linear, mean).
        """
        if getattr(self.model, "has_uncertainty", False):
            return self.model
        if hasattr(self.model, "predict_per_tree"):
            return None
        raise TypeError(
            f"{self.kind} model has no uncertainty estimate; "
            "use model='forest' or fit xgboost with quantile_heads"
        )

    # ------------------------------------------------------------------
    def feature_importances(self) -> dict[str, float]:
        """Per-feature importance (average gain), highest first.

        Only tree models expose importances, matching the paper ("the
        best set of features using those reported by XGBoost and the
        decision forest, since these models expose feature importances").
        """
        if not hasattr(self.model, "feature_importances"):
            raise TypeError(f"{self.kind} model has no feature importances")
        values = self.model.feature_importances()
        pairs = sorted(
            zip(self.feature_columns, values), key=lambda kv: -kv[1]
        )
        return {name: float(v) for name, v in pairs}

    def feature_importances_labeled(self) -> dict[str, float]:
        """Importances keyed by the paper's Fig. 6 feature labels."""
        return {
            FEATURE_LABELS.get(name, name): value
            for name, value in self.feature_importances().items()
        }

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the trained predictor ("This model is exported and
        used in downstream relative performance prediction tasks")."""
        Path(path).write_bytes(pickle.dumps(self))

    @classmethod
    def load(cls, path: str | Path) -> "CrossArchPredictor":
        obj = pickle.loads(Path(path).read_bytes())
        if not isinstance(obj, cls):
            raise TypeError(f"{path} does not contain a CrossArchPredictor")
        return obj
