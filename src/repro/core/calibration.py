"""Measurement-floor and orderability diagnostics.

Before trusting an RPV model (or comparing SOS numbers across papers),
two questions must be answered about the underlying measurements:

1. **Noise floor** — if the same configuration is run twice, how often
   does the system ordering even agree with itself?  That test-retest
   agreement is a hard ceiling on any model's SOS.
2. **Orderability** — how large are the gaps between adjacent systems
   in the true RPVs, relative to the prediction error?  Orderings of
   near-tied systems are not learnable.

Both diagnostics are cheap on the simulator (re-run with a different
trial index) and would cost one repeat campaign on real clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.catalog import APPLICATIONS
from repro.apps.inputs import generate_inputs
from repro.arch.machines import MACHINES, SYSTEM_ORDER
from repro.perfsim.config import SCALES, make_run_config
from repro.perfsim.execution import simulate_run

__all__ = ["NoiseFloor", "estimate_noise_floor", "gap_statistics"]


@dataclass(frozen=True)
class NoiseFloor:
    """Test-retest stability of the simulated measurements.

    Attributes
    ----------
    sos_ceiling:
        Fraction of (app, input, scale) groups whose full system
        ordering agrees between two independent trials — the maximum
        SOS any model can score against single-trial targets.
    rpv_mae_floor:
        Mean absolute difference between the two trials' RPVs — the
        minimum MAE achievable by a perfect model of the expectation.
    groups:
        Number of groups measured.
    """

    sos_ceiling: float
    rpv_mae_floor: float
    groups: int


def estimate_noise_floor(
    inputs_per_app: int = 4,
    seed: int = 0,
    apps: list[str] | None = None,
    scales: tuple[str, ...] = SCALES,
) -> NoiseFloor:
    """Measure test-retest SOS ceiling and RPV MAE floor."""
    if inputs_per_app < 1:
        raise ValueError("inputs_per_app must be >= 1")
    app_names = list(apps) if apps is not None else sorted(APPLICATIONS)
    agree = 0
    diffs: list[float] = []
    groups = 0
    for app_name in app_names:
        app = APPLICATIONS[app_name]
        for inp in generate_inputs(app, inputs_per_app, seed=seed):
            for scale in scales:
                t1 = np.empty(len(SYSTEM_ORDER))
                t2 = np.empty(len(SYSTEM_ORDER))
                for j, system in enumerate(SYSTEM_ORDER):
                    machine = MACHINES[system]
                    config = make_run_config(app, machine, scale)
                    t1[j] = simulate_run(app, inp, machine, config,
                                         seed=seed, trial=0).time_seconds
                    t2[j] = simulate_run(app, inp, machine, config,
                                         seed=seed, trial=1).time_seconds
                rpv1 = t1 / t1.max()
                rpv2 = t2 / t2.max()
                agree += int(
                    (np.argsort(rpv1, kind="stable")
                     == np.argsort(rpv2, kind="stable")).all()
                )
                diffs.append(float(np.abs(rpv1 - rpv2).mean()))
                groups += 1
    return NoiseFloor(
        sos_ceiling=agree / groups,
        rpv_mae_floor=float(np.mean(diffs)),
        groups=groups,
    )


def gap_statistics(Y: np.ndarray) -> dict[str, float]:
    """Adjacent-gap statistics of an RPV target matrix.

    For each row, the minimum absolute gap between adjacent sorted
    components — the margin a predictor must beat to rank that row
    correctly.  Returns the quartiles and the fraction of rows whose
    minimum gap is under 0.05 RPV units ("near-tied" rows).
    """
    Y = np.asarray(Y, dtype=np.float64)
    if Y.ndim != 2 or Y.shape[1] < 2:
        raise ValueError("Y must be (rows, >=2 systems)")
    sorted_rows = np.sort(Y, axis=1)
    min_gaps = np.diff(sorted_rows, axis=1).min(axis=1)
    return {
        "p25": float(np.percentile(min_gaps, 25)),
        "median": float(np.median(min_gaps)),
        "p75": float(np.percentile(min_gaps, 75)),
        "near_tied_fraction": float((min_gaps < 0.05).mean()),
    }
