"""The paper's primary contribution: cross-architecture RPV prediction.

* :mod:`repro.core.rpv` — relative-performance-vector math (Section IV).
* :mod:`repro.core.predictor` — :class:`CrossArchPredictor`, the
  counters-in / RPV-out model API with feature importances and
  serialization.
* :mod:`repro.core.pipeline` — the paper's training protocol: 90/10
  train-test split, 5-fold cross-validation, the four-model comparison,
  and gain-based feature selection (Section VI).
* :mod:`repro.core.evaluation` — the evaluation studies behind each
  figure: per-architecture ablation, scale holdout, leave-one-app-out,
  feature importances (Section VIII).
"""

from repro.core.predictor import CrossArchPredictor
from repro.core.zeroshot import DescriptorConditionedPredictor
from repro.core.pipeline import (
    MODEL_FACTORIES,
    TrainedModel,
    select_top_features,
    train_all_models,
    train_model,
)
from repro.core.calibration import estimate_noise_floor, gap_statistics
from repro.core.rpv import rpv, rpv_relative_to_fastest, rpv_relative_to_slowest
from repro.core.whatif import estimate_speedup, porting_value
from repro.core.evaluation import (
    app_holdout_study,
    counter_noise_sensitivity_study,
    feature_importance_study,
    model_comparison_study,
    per_architecture_study,
    robustness_study,
    scale_holdout_study,
)

__all__ = [
    "rpv",
    "rpv_relative_to_slowest",
    "rpv_relative_to_fastest",
    "CrossArchPredictor",
    "DescriptorConditionedPredictor",
    "MODEL_FACTORIES",
    "TrainedModel",
    "train_model",
    "train_all_models",
    "select_top_features",
    "model_comparison_study",
    "per_architecture_study",
    "scale_holdout_study",
    "app_holdout_study",
    "feature_importance_study",
    "counter_noise_sensitivity_study",
    "robustness_study",
    "estimate_speedup",
    "porting_value",
    "estimate_noise_floor",
    "gap_statistics",
]
