"""What-if analysis API (the Section VIII-B use case).

"Users can obtain an estimate of the speedup from running on a given
architecture without actually having access to or being capable of
running that architecture."  This module wraps that workflow:

* :func:`estimate_speedup` — predicted speedup of moving one profiled
  run from one system to another.
* :func:`porting_value` — for a batch of profiled runs, rank how much
  each would gain from the best GPU system; the "is the port worth it?"
  report for a code team considering GPU support.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.machines import MACHINES, SYSTEM_ORDER
from repro.core.predictor import CrossArchPredictor
from repro.frame import Frame

__all__ = ["estimate_speedup", "porting_value", "PortingEstimate"]


def _system_index(name: str) -> int:
    for i, system in enumerate(SYSTEM_ORDER):
        if system.lower() == name.lower():
            return i
    raise KeyError(f"unknown system {name!r}; known: {list(SYSTEM_ORDER)}")


def estimate_speedup(
    predictor: CrossArchPredictor,
    record: dict,
    from_system: str,
    to_system: str,
) -> float:
    """Predicted speedup of moving *record*'s run between systems.

    A value above 1 means *to_system* is predicted faster.  RPVs are
    time ratios, so the speedup is ``rpv[from] / rpv[to]``.
    """
    rpv = predictor.predict_record(record)
    i = _system_index(from_system)
    j = _system_index(to_system)
    if rpv[j] <= 0:
        raise ValueError("non-positive predicted RPV component")
    return float(rpv[i] / rpv[j])


@dataclass(frozen=True)
class PortingEstimate:
    """One run's predicted value of moving to the best GPU system."""

    app: str
    input_label: str
    best_gpu_system: str
    speedup_vs_source: float
    predicted_rpv: np.ndarray


def porting_value(
    predictor: CrossArchPredictor,
    records: list[dict],
    source_system: str = "Quartz",
) -> Frame:
    """Rank profiled runs by predicted gain from the best GPU system.

    *records* are run records (profiled on *source_system* or anywhere —
    the features carry their own provenance).  Returns a frame sorted by
    descending speedup with one row per record: the team's shortlist of
    which codes to port first.
    """
    if not records:
        raise ValueError("no records given")
    gpu_systems = [
        name for name in SYSTEM_ORDER if MACHINES[name].has_gpu
    ]
    src = _system_index(source_system)
    rows = []
    for record in records:
        rpv = predictor.predict_record(record)
        best = min(gpu_systems, key=lambda s: rpv[_system_index(s)])
        rows.append(
            {
                "app": str(record.get("app", "?")),
                "input": str(record.get("input", "?")),
                "best_gpu_system": best,
                "speedup_vs_source": float(
                    rpv[src] / rpv[_system_index(best)]
                ),
            }
        )
    frame = Frame.from_records(rows)
    return frame.sort_values("speedup_vs_source", descending=True)
