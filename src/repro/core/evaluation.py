"""Evaluation studies backing the paper's figures (Section VIII A-C).

Every function returns a :class:`repro.frame.Frame` shaped like the
corresponding figure's data, so the benchmark harness can print exactly
the rows/series the paper plots.
"""

from __future__ import annotations

import numpy as np

from repro.arch.machines import SYSTEM_ORDER
from repro.core.pipeline import MODEL_FACTORIES, train_all_models, train_model
from repro.core.predictor import CrossArchPredictor
from repro.dataset.generate import MPHPCDataset
from repro.dataset.schema import FEATURE_LABELS
from repro.frame import Frame
from repro.ml import mean_absolute_error, same_order_score, train_test_split
from repro.perfsim.config import SCALES

__all__ = [
    "model_comparison_study",
    "per_architecture_study",
    "scale_holdout_study",
    "app_holdout_study",
    "feature_importance_study",
    "counter_noise_sensitivity_study",
    "robustness_study",
]


def model_comparison_study(
    dataset: MPHPCDataset, seed: int = 42, run_cv: bool = False,
    model_kwargs: dict | None = None, jobs: int = 1,
) -> Frame:
    """Fig. 2: test-set MAE and SOS of the four models.

    ``model_kwargs`` (e.g. smaller tree counts) apply to the tree models
    only and exist so tests can run the study cheaply.  ``jobs > 1``
    trains the four models on a process pool with identical results.
    """
    trained = train_all_models(dataset, seed=seed, run_cv=run_cv,
                               jobs=jobs, model_kwargs=model_kwargs)
    rows = [
        {
            "model": name,
            "mae": trained[name].test_mae,
            "sos": trained[name].test_sos,
            "cv_mae": trained[name].cv_mae,
            "cv_sos": trained[name].cv_sos,
        }
        for name in MODEL_FACTORIES
    ]
    return Frame.from_records(rows)


def per_architecture_study(
    dataset: MPHPCDataset, seed: int = 42,
    model_kwargs: dict | None = None,
    n_repeats: int = 3,
) -> Frame:
    """Fig. 3: MAE/SOS per (model, source architecture).

    "how well the models perform when the counters for only one
    architecture are used" — each cell trains and tests on the subset
    of rows whose counters were collected on that architecture.  The
    per-architecture subsets are a quarter of the dataset, so each cell
    averages *n_repeats* train/test splits (seeds ``seed..seed+n-1``)
    to keep the heatmap stable.
    """
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    machines = np.array([str(m) for m in dataset.frame["machine"]])
    rows = []
    for system in SYSTEM_ORDER:
        sub = dataset.subset(machines == system)
        for name in MODEL_FACTORIES:
            kwargs = model_kwargs if (model_kwargs and name in
                                      ("forest", "xgboost")) else {}
            maes, soses = [], []
            for r in range(n_repeats):
                trained = train_model(sub, model=name, seed=seed + r,
                                      run_cv=False, **kwargs)
                maes.append(trained.test_mae)
                soses.append(trained.test_sos)
            rows.append(
                {
                    "model": name,
                    "source_arch": system,
                    "mae": float(np.mean(maes)),
                    "sos": float(np.mean(soses)),
                }
            )
    return Frame.from_records(rows)


def scale_holdout_study(
    dataset: MPHPCDataset, seed: int = 42, model: str = "xgboost",
    model_kwargs: dict | None = None,
) -> Frame:
    """Fig. 4: train on two run scales, evaluate on the held-out third."""
    scales = np.array([str(s) for s in dataset.frame["scale"]])
    X, Y = dataset.X(), dataset.Y()
    rows = []
    for held_out in SCALES:
        train_mask = scales != held_out
        predictor = CrossArchPredictor(model=model, random_state=seed,
                                       **(model_kwargs or {}))
        predictor.fit(dataset, rows=np.flatnonzero(train_mask))
        pred = predictor.predict(X[~train_mask])
        rows.append(
            {
                "held_out_scale": held_out,
                "mae": mean_absolute_error(Y[~train_mask], pred),
                "sos": same_order_score(Y[~train_mask], pred),
            }
        )
    return Frame.from_records(rows)


def app_holdout_study(
    dataset: MPHPCDataset, seed: int = 42, model: str = "xgboost",
    apps: list[str] | None = None,
    model_kwargs: dict | None = None,
) -> Frame:
    """Fig. 5: leave-one-application-out generalization."""
    app_col = np.array([str(a) for a in dataset.frame["app"]])
    X, Y = dataset.X(), dataset.Y()
    rows = []
    for app in (apps if apps is not None else sorted(set(app_col))):
        test_mask = app_col == app
        if not test_mask.any():
            raise KeyError(f"no rows for app {app!r}")
        predictor = CrossArchPredictor(model=model, random_state=seed,
                                       **(model_kwargs or {}))
        predictor.fit(dataset, rows=np.flatnonzero(~test_mask))
        pred = predictor.predict(X[test_mask])
        rows.append(
            {
                "held_out_app": app,
                "mae": mean_absolute_error(Y[test_mask], pred),
                "sos": same_order_score(Y[test_mask], pred),
            }
        )
    return Frame.from_records(rows)


def robustness_study(
    dataset_seeds: tuple[int, ...] = (0, 1, 2),
    inputs_per_app: int = 6,
    split_seed: int = 42,
    model_kwargs: dict | None = None,
) -> Frame:
    """Fig. 2 repeated over independently generated datasets.

    Single-number comparisons hide generation/split variance; this
    study regenerates the dataset under several seeds and reports each
    model's mean and standard deviation of test MAE/SOS.  A claimed
    ordering (e.g. "XGBoost beats the forest") is only trustworthy when
    the gap exceeds these spreads.
    """
    from repro.dataset.generate import generate_dataset

    per_model: dict[str, dict[str, list[float]]] = {
        name: {"mae": [], "sos": []} for name in MODEL_FACTORIES
    }
    for ds_seed in dataset_seeds:
        dataset = generate_dataset(inputs_per_app=inputs_per_app,
                                   seed=ds_seed)
        for name in MODEL_FACTORIES:
            kwargs = model_kwargs if (model_kwargs and name in
                                      ("forest", "xgboost")) else {}
            trained = train_model(dataset, model=name, seed=split_seed,
                                  run_cv=False, **kwargs)
            per_model[name]["mae"].append(trained.test_mae)
            per_model[name]["sos"].append(trained.test_sos)
    rows = []
    for name in MODEL_FACTORIES:
        mae = np.array(per_model[name]["mae"])
        sos = np.array(per_model[name]["sos"])
        rows.append(
            {
                "model": name,
                "mae_mean": float(mae.mean()),
                "mae_std": float(mae.std()),
                "sos_mean": float(sos.mean()),
                "sos_std": float(sos.std()),
            }
        )
    return Frame.from_records(rows)


def counter_noise_sensitivity_study(
    noise_scales: tuple[float, ...] = (0.25, 1.0, 4.0),
    inputs_per_app: int = 6,
    seed: int = 42,
    model_kwargs: dict | None = None,
) -> Frame:
    """How GPU-profiling counter noise shifts per-source accuracy.

    Backs the Fig. 3 discussion in EXPERIMENTS.md: regenerates the
    dataset with the GPU systems' counter-noise sigma scaled by each
    factor (CPU PAPI noise held fixed) and reports the XGBoost MAE per
    counter-source group.  Regeneration makes this study expensive;
    keep ``inputs_per_app`` modest.
    """
    from dataclasses import replace as _replace

    from repro.arch import machines as machines_module
    from repro.dataset.generate import generate_dataset

    base = {
        name: machines_module.MACHINES[name].counter_noise_sigma
        for name in SYSTEM_ORDER
    }
    rows = []
    try:
        for scale in noise_scales:
            for name in ("Lassen", "Corona"):
                machines_module.MACHINES[name] = _replace(
                    machines_module.MACHINES[name],
                    counter_noise_sigma=base[name] * scale,
                )
            dataset = generate_dataset(inputs_per_app=inputs_per_app,
                                       seed=seed)
            machine_col = np.array(
                [str(m) for m in dataset.frame["machine"]]
            )
            for group, members in (("cpu_source", ("Quartz", "Ruby")),
                                   ("gpu_source", ("Lassen", "Corona"))):
                maes = []
                for system in members:
                    sub = dataset.subset(machine_col == system)
                    trained = train_model(
                        sub, model="xgboost", seed=seed, run_cv=False,
                        **(model_kwargs or {}),
                    )
                    maes.append(trained.test_mae)
                rows.append(
                    {
                        "gpu_noise_scale": scale,
                        "source": group,
                        "mae": float(np.mean(maes)),
                    }
                )
    finally:
        for name in ("Lassen", "Corona"):
            machines_module.MACHINES[name] = _replace(
                machines_module.MACHINES[name],
                counter_noise_sigma=base[name],
            )
    return Frame.from_records(rows)


def feature_importance_study(
    dataset: MPHPCDataset, seed: int = 42, model: str = "xgboost",
    model_kwargs: dict | None = None,
) -> Frame:
    """Fig. 6: average-gain feature importances of the trained model."""
    train_rows, _ = train_test_split(dataset.num_rows, 0.1, random_state=seed)
    predictor = CrossArchPredictor(model=model, random_state=seed,
                                   **(model_kwargs or {}))
    predictor.fit(dataset, rows=train_rows)
    rows = [
        {
            "feature": name,
            "label": FEATURE_LABELS.get(name, name),
            "importance": value,
        }
        for name, value in predictor.feature_importances().items()
    ]
    return Frame.from_records(rows)
