"""Relative Performance Vector (RPV) math — Section IV.

The paper defines ``rpv(a, i, s)`` as "the vector of the performance of
(a, i) across all platforms relative to that on system s": running
(TestApp, "-s 5") in 10 / 8 / 21 minutes on systems X / Y / Z gives the
vector relative to X as ``[1.0, 0.8, 2.1]`` — i.e. **time ratios**
(smaller = faster).  It also defines ``rpv(.,.,min)`` and
``rpv(.,.,max)`` relative to the systems of lowest and highest
performance.

Two consequences drive this implementation (see DESIGN.md):

* Since RPVs are time ratios, *choosing the fastest machine means
  argmin, not the argmax written in the paper's Algorithm 2* (a typo;
  the worked example makes the convention unambiguous).
* The modeling target is ``rpv(.,.,min)`` — relative to the slowest
  system — whose components live in (0, 1].  That bounded range is the
  only reading consistent with the paper's error magnitudes (MAE 0.11
  vs a mean-baseline around 0.6): ratios relative to an arbitrary
  source system are unbounded above (a V100 node is >30x a single CPU
  core) and would dominate any MAE.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rpv",
    "rpv_relative_to_slowest",
    "rpv_relative_to_fastest",
    "fastest_system",
    "system_order",
]


def _validate_times(times: np.ndarray) -> np.ndarray:
    times = np.asarray(times, dtype=np.float64)
    if times.ndim != 1 or times.size < 2:
        raise ValueError("times must be a 1-D vector of length >= 2")
    if not np.all(np.isfinite(times)) or (times <= 0).any():
        raise ValueError("times must be positive and finite")
    return times


def rpv(times: np.ndarray, base: int) -> np.ndarray:
    """RPV of *times* relative to the system at index *base*.

    Examples
    --------
    The paper's worked example (times 10, 8, 21 relative to system 0):

    >>> rpv([10.0, 8.0, 21.0], base=0).tolist()
    [1.0, 0.8, 2.1]
    """
    times = _validate_times(times)
    if not 0 <= base < times.size:
        raise IndexError(f"base {base} out of range for {times.size} systems")
    return times / times[base]


def rpv_relative_to_slowest(times: np.ndarray) -> np.ndarray:
    """``rpv(.,.,min)``: relative to the lowest-performance (slowest)
    system; components in (0, 1] with exactly one 1.0.  This is the
    modeling target throughout the reproduction."""
    times = _validate_times(times)
    return times / times.max()


def rpv_relative_to_fastest(times: np.ndarray) -> np.ndarray:
    """``rpv(.,.,max)``: relative to the highest-performance (fastest)
    system; components >= 1 with exactly one 1.0."""
    times = _validate_times(times)
    return times / times.min()


def fastest_system(rpv_vector: np.ndarray) -> int:
    """Index of the fastest system in a time-ratio RPV (argmin).

    This is the corrected form of the paper's Algorithm 2 line 3.
    """
    rpv_vector = _validate_times(rpv_vector)
    return int(np.argmin(rpv_vector))


def system_order(rpv_vector: np.ndarray) -> np.ndarray:
    """System indices from fastest to slowest."""
    rpv_vector = _validate_times(rpv_vector)
    return np.argsort(rpv_vector, kind="stable")
