"""Regularized gradient tree boosting (from-scratch XGBoost equivalent).

Implements the training objective from Section VI-A of the paper:

    L(theta) = sum_i l(yhat_i, y_i) + sum_k Omega(f_k)

optimized greedily, one tree per boosting round, using the standard
second-order approximation.  Supported loss functions:

* ``"squared"`` — l = 1/2 (yhat - y)^2, the XGBoost default
  (``reg:squarederror``); constant unit hessian.
* ``"pseudo_huber"`` — a smooth approximation of absolute error, matching
  the paper's use of MAE as the minimization objective (exact MAE has a
  zero hessian and cannot be used with second-order boosting; XGBoost
  itself offers ``reg:pseudohubererror`` for the same reason).

Multi-output targets (the 4-component RPVs) are handled with one of two
strategies:

* ``"per_output"`` (default) — an independent tree per output per round,
  which is what running XGBoost 1.7 under a multi-output wrapper does and
  matches the paper's description of averaging gain over outputs when
  reporting importances.
* ``"multi_output_tree"`` — a single tree per round with vector leaves and
  gain averaged across outputs during growth (cheaper; kept for ablation).

Feature importances follow the paper's definition exactly: the *average
gain* of all splits on a feature, across all trees (and averaged over
outputs), normalized to sum to one.
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.ml.tree import Binner, FlatEnsemble, Tree, TreeParams, grow_tree

__all__ = ["GradientBoostedTrees"]


class GradientBoostedTrees:
    """Gradient-boosted regression trees with XGBoost-style regularization.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to every leaf weight.
    max_depth, min_child_weight, reg_lambda, gamma, min_samples_leaf:
        Tree growth controls (see :class:`repro.ml.tree.TreeParams`).
    n_bins:
        Histogram resolution for split finding.
    subsample:
        Row subsampling fraction per round (without replacement).
    colsample_bytree:
        Feature subsampling fraction per tree.
    objective:
        ``"squared"`` or ``"pseudo_huber"``.
    huber_delta:
        Transition scale for the pseudo-Huber loss.
    multi_strategy:
        ``"per_output"`` or ``"multi_output_tree"`` (see module docstring).
    random_state:
        Seed for row/column subsampling.
    quantile_heads:
        Optional quantile levels (e.g. ``(0.25, 0.75)``) to fit as
        auxiliary pinball-loss ensembles **after** the main fit.  When
        set, :meth:`predict_with_uncertainty` returns the inter-quantile
        half-width as the uncertainty estimate.  The heads are trained
        strictly after (and independently of) the main boosting loop —
        they consume no shared randomness and never touch the mean
        prediction, so enabling them cannot perturb ``predict``.
    n_quantile_rounds, quantile_max_depth:
        Size of each quantile head's ensemble (heads are deliberately
        smaller than the main model; they estimate a band, not a mean).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> X = rng.normal(size=(200, 3))
    >>> y = X[:, 0] * 2 + np.sin(X[:, 1])
    >>> model = GradientBoostedTrees(n_estimators=50, max_depth=3).fit(X, y)
    >>> float(np.abs(model.predict(X)[:, 0] - y).mean()) < 0.2
    True
    """

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 6,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        min_samples_leaf: int = 1,
        n_bins: int = 64,
        subsample: float = 1.0,
        colsample_bytree: float = 1.0,
        objective: str = "squared",
        huber_delta: float = 1.0,
        multi_strategy: str = "per_output",
        random_state: int | None = None,
        quantile_heads: tuple[float, ...] | None = None,
        n_quantile_rounds: int = 100,
        quantile_max_depth: int = 4,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0 < subsample <= 1 or not 0 < colsample_bytree <= 1:
            raise ValueError("subsample fractions must be in (0, 1]")
        if objective not in ("squared", "pseudo_huber"):
            raise ValueError(f"unknown objective {objective!r}")
        if multi_strategy not in ("per_output", "multi_output_tree"):
            raise ValueError(f"unknown multi_strategy {multi_strategy!r}")
        if quantile_heads is not None:
            quantile_heads = tuple(sorted(float(q) for q in quantile_heads))
            if len(quantile_heads) < 2:
                raise ValueError("quantile_heads needs >= 2 levels")
            if not all(0.0 < q < 1.0 for q in quantile_heads):
                raise ValueError("quantile levels must be in (0, 1)")
            if len(set(quantile_heads)) != len(quantile_heads):
                raise ValueError("quantile levels must be distinct")
        if n_quantile_rounds < 1:
            raise ValueError("n_quantile_rounds must be >= 1")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.params = TreeParams(
            max_depth=max_depth,
            min_child_weight=min_child_weight,
            reg_lambda=reg_lambda,
            gamma=gamma,
            min_samples_leaf=min_samples_leaf,
        )
        self.n_bins = n_bins
        self.subsample = subsample
        self.colsample_bytree = colsample_bytree
        self.objective = objective
        self.huber_delta = huber_delta
        self.multi_strategy = multi_strategy
        self.random_state = random_state
        self.quantile_heads = quantile_heads
        self.n_quantile_rounds = n_quantile_rounds
        self.quantile_params = TreeParams(
            max_depth=quantile_max_depth,
            min_child_weight=min_child_weight,
            reg_lambda=reg_lambda,
            gamma=gamma,
            min_samples_leaf=min_samples_leaf,
        )

        self.binner_: Binner | None = None
        self.trees_: list[list[Tree]] = []  # trees_[round] = trees that round
        self.base_score_: np.ndarray | None = None
        self.n_features_: int = 0
        self.n_outputs_: int = 0
        self._single_output_input = False
        # Lazily-built flat stacked ensemble for vectorized prediction,
        # keyed by strong references to the trees themselves so direct
        # trees_ replacement (deserialization, early-stopping
        # truncation, a serve hot-swap) always misses — an id-based key
        # could false-hit when a replaced tree's id is recycled.
        self._flat_cache: tuple[tuple[Tree, ...], FlatEnsemble] | None = None
        #: Per-round metrics recorded during fit: train MAE always, and
        #: validation MAE when an eval_set is supplied.
        self.eval_history_: dict[str, list[float]] = {}
        #: quantile level -> (base score, per-round per-output trees).
        self.quantile_trees_: dict[
            float, tuple[np.ndarray, list[list[Tree]]]
        ] = {}

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        Y: np.ndarray,
        eval_set: tuple[np.ndarray, np.ndarray] | None = None,
        early_stopping_rounds: int | None = None,
    ) -> "GradientBoostedTrees":
        """Fit the ensemble.

        If *eval_set* ``(X_val, Y_val)`` and *early_stopping_rounds* are
        given, training stops when validation MAE has not improved for
        that many consecutive rounds and the ensemble is truncated to the
        best round.
        """
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        self._single_output_input = Y.ndim == 1
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.ndim != 2 or Y.shape[0] != X.shape[0]:
            raise ValueError(f"bad shapes X={X.shape} Y={Y.shape}")
        n, f = X.shape
        k = Y.shape[1]
        self.n_features_ = f
        self.n_outputs_ = k
        rng = np.random.default_rng(self.random_state)

        self.binner_ = Binner(self.n_bins)
        Xb = self.binner_.fit_transform(X)
        self.base_score_ = Y.mean(axis=0)
        pred = np.tile(self.base_score_, (n, 1))
        self.trees_ = []
        self._flat_cache = None
        self.quantile_trees_ = {}

        val_pack = None
        if eval_set is not None:
            Xv, Yv = eval_set
            Xv = np.asarray(Xv, dtype=np.float64)
            Yv = np.asarray(Yv, dtype=np.float64)
            if Yv.ndim == 1:
                Yv = Yv[:, None]
            Xvb = self.binner_.transform(Xv)
            val_pred = np.tile(self.base_score_, (Xv.shape[0], 1))
            val_pack = (Xvb, Yv, val_pred)
        best_mae = np.inf
        best_round = -1
        stall = 0
        self.eval_history_ = {"train_mae": []}
        if val_pack is not None:
            self.eval_history_["val_mae"] = []

        # One mode check before the loop; the per-round observe is two
        # dict-free method calls when metrics are on, nothing when off.
        round_hist = (
            telemetry.histogram("boost.round_seconds")
            if telemetry.metrics_enabled() else None
        )
        for round_idx in range(self.n_estimators):
            round_t0 = time.perf_counter() if round_hist is not None else 0.0
            g, h = self._grad_hess(pred, Y)
            rows = self._sample_rows(rng, n)
            round_trees: list[Tree] = []
            if self.multi_strategy == "multi_output_tree":
                cols = self._sample_cols(rng, f)
                tree = grow_tree(
                    Xb, g, h, self.params, self.n_bins,
                    rows=rows, feature_subset=cols,
                    leaf_scale=self.learning_rate,
                )
                pred += tree.predict_binned(Xb)
                round_trees.append(tree)
            else:
                for out in range(k):
                    cols = self._sample_cols(rng, f)
                    tree = grow_tree(
                        Xb, g[:, out], h[:, out], self.params, self.n_bins,
                        rows=rows, feature_subset=cols,
                        leaf_scale=self.learning_rate,
                    )
                    pred[:, out] += tree.predict_binned(Xb)[:, 0]
                    round_trees.append(tree)
            self.trees_.append(round_trees)
            self.eval_history_["train_mae"].append(
                float(np.abs(pred - Y).mean())
            )
            if round_hist is not None:
                round_hist.observe(time.perf_counter() - round_t0)

            if val_pack is not None:
                Xvb, Yv, val_pred = val_pack
                if self.multi_strategy == "multi_output_tree":
                    val_pred += round_trees[0].predict_binned(Xvb)
                else:
                    for out, tree in enumerate(round_trees):
                        val_pred[:, out] += tree.predict_binned(Xvb)[:, 0]
                mae = float(np.abs(val_pred - Yv).mean())
                self.eval_history_["val_mae"].append(mae)
                if early_stopping_rounds is not None:
                    if mae < best_mae - 1e-12:
                        best_mae, best_round, stall = mae, round_idx, 0
                    else:
                        stall += 1
                        if stall >= early_stopping_rounds:
                            self.trees_ = self.trees_[: best_round + 1]
                            break
        if self.quantile_heads:
            self._fit_quantile_heads(Xb, Y)
        return self

    def _fit_quantile_heads(self, Xb: np.ndarray, Y: np.ndarray) -> None:
        """Fit one pinball-loss ensemble per requested quantile level.

        Pinball loss ``l_q(y, f) = max(q (y - f), (q - 1)(y - f))`` has
        gradient ``-q`` where the model underestimates and ``1 - q``
        where it overestimates; its true hessian is zero, so we use the
        standard constant-hessian trick (h = 1), which turns each leaf
        weight into a damped step toward the empirical quantile.  Heads
        run after the main loop with no subsampling, so they neither
        consume the shared rng nor alter any main-ensemble tree.
        """
        n = Xb.shape[0]
        for q in self.quantile_heads:
            base = np.quantile(Y, q, axis=0)
            pred = np.tile(base, (n, 1))
            rounds: list[list[Tree]] = []
            for _ in range(self.n_quantile_rounds):
                g = np.where(Y > pred, -q, 1.0 - q)
                h = np.ones_like(Y)
                round_trees: list[Tree] = []
                for out in range(Y.shape[1]):
                    tree = grow_tree(
                        Xb, g[:, out], h[:, out], self.quantile_params,
                        self.n_bins, leaf_scale=self.learning_rate,
                    )
                    pred[:, out] += tree.predict_binned(Xb)[:, 0]
                    round_trees.append(tree)
                rounds.append(round_trees)
            self.quantile_trees_[q] = (base, rounds)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets; always returns shape ``(n, n_outputs)``."""
        if self.binner_ is None or self.base_score_ is None:
            raise RuntimeError("predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        return self.predict_binned(self.binner_.transform(X))

    def predict_binned(self, Xb: np.ndarray) -> np.ndarray:
        """Predict from a pre-binned feature matrix (``binner_.transform``
        output), skipping the repeated quantile transform when the same
        rows are scored many times.  Returns shape ``(n, n_outputs)``.

        Every tree is traversed in one flat vectorized pass
        (:class:`~repro.ml.tree.FlatEnsemble`); leaf contributions are
        then accumulated round by round in the exact order of the
        original per-tree loop, so results are bit-identical to it
        (numpy reductions would use pairwise summation and drift in the
        last ulp).
        """
        if self.binner_ is None or self.base_score_ is None:
            raise RuntimeError("predict called before fit")
        Xb = np.asarray(Xb)
        pred = np.tile(self.base_score_, (Xb.shape[0], 1))
        if not self.trees_:
            return pred
        flat = self._flat_ensemble()
        leaves = flat.predict_leaves(Xb)
        values = flat.values
        ti = 0
        for round_trees in self.trees_:
            if self.multi_strategy == "multi_output_tree":
                pred += values[leaves[ti]]
                ti += 1
            else:
                for out in range(len(round_trees)):
                    pred[:, out] += values[leaves[ti], 0]
                    ti += 1
        return pred

    @property
    def has_uncertainty(self) -> bool:
        """True once quantile heads are fitted (uncertainty protocol)."""
        return bool(self.quantile_trees_)

    def predict_quantile_binned(self, q: float, Xb: np.ndarray) -> np.ndarray:
        """One quantile head's prediction from pre-binned features."""
        if q not in self.quantile_trees_:
            raise RuntimeError(
                f"no quantile head fitted for level {q!r}; "
                f"available: {sorted(self.quantile_trees_)}"
            )
        base, rounds = self.quantile_trees_[q]
        Xb = np.asarray(Xb)
        pred = np.tile(base, (Xb.shape[0], 1))
        for round_trees in rounds:
            for out, tree in enumerate(round_trees):
                pred[:, out] += tree.predict_binned(Xb)[:, 0]
        return pred

    def predict_with_uncertainty(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(mean, spread)``, both ``(n, n_outputs)``.

        The mean is :meth:`predict`'s output, untouched; the spread is
        the half-width between the highest and lowest fitted quantile
        heads, clipped at zero (crossed quantile estimates collapse to
        zero spread rather than going negative).
        """
        if self.binner_ is None:
            raise RuntimeError("predict called before fit")
        Xb = self.binner_.transform(np.asarray(X, dtype=np.float64))
        return self.predict_binned_with_uncertainty(Xb)

    def predict_binned_with_uncertainty(
        self, Xb: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(mean, spread)`` from pre-binned features."""
        if not self.quantile_trees_:
            raise RuntimeError(
                "model has no quantile heads; construct with "
                "quantile_heads=(lo, hi) to enable uncertainty"
            )
        mean = self.predict_binned(Xb)
        levels = sorted(self.quantile_trees_)
        lo = self.predict_quantile_binned(levels[0], Xb)
        hi = self.predict_quantile_binned(levels[-1], Xb)
        spread = np.clip((hi - lo) / 2.0, 0.0, None)
        return mean, spread

    def _flat_ensemble(self) -> FlatEnsemble:
        key = tuple(t for round_trees in self.trees_ for t in round_trees)
        cached = self._flat_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        flat = FlatEnsemble(list(key))
        self._flat_cache = (key, flat)
        return flat

    def __getstate__(self) -> dict:
        # The flat cache is a pure derivation of trees_ and roughly
        # doubles the pickled model size; persisting it would also leave
        # a stale entry on every deserialized copy (the unpickled trees
        # are new objects, so the key can never hit again).  Serve
        # hot-swaps load models via pickle, so shipping the cache would
        # leak one dead FlatEnsemble per swap.
        state = self.__dict__.copy()
        state["_flat_cache"] = None
        return state

    # ------------------------------------------------------------------
    def feature_importances(self, kind: str = "gain") -> np.ndarray:
        """Per-feature importances, normalized to sum to 1.

        ``kind="gain"`` (default) is the paper's definition: the average
        gain across all splits on the feature, over all trees and outputs.
        ``kind="weight"`` counts splits instead (mentioned by the paper as
        biased towards high-cardinality features; provided for comparison).
        """
        if not self.trees_:
            raise RuntimeError("feature_importances called before fit")
        if kind not in ("gain", "weight"):
            raise ValueError(f"unknown importance kind {kind!r}")
        total_gain = np.zeros(self.n_features_)
        total_count = np.zeros(self.n_features_)
        for round_trees in self.trees_:
            for tree in round_trees:
                total_gain += tree.feature_gains()
                total_count += tree.feature_split_counts()
        if kind == "weight":
            raw = total_count
        else:
            with np.errstate(invalid="ignore"):
                raw = np.where(total_count > 0, total_gain / np.maximum(total_count, 1), 0.0)
        s = raw.sum()
        return raw / s if s > 0 else raw

    @property
    def n_trees_(self) -> int:
        """Total number of individual trees in the fitted ensemble."""
        return sum(len(r) for r in self.trees_)

    # ------------------------------------------------------------------
    def _grad_hess(self, pred: np.ndarray, Y: np.ndarray):
        resid = pred - Y
        if self.objective == "squared":
            return resid, np.ones_like(resid)
        # Pseudo-Huber: l = d^2 (sqrt(1 + (r/d)^2) - 1)
        d = self.huber_delta
        scale = np.sqrt(1.0 + (resid / d) ** 2)
        g = resid / scale
        h = 1.0 / scale**3
        return g, h

    def _sample_rows(self, rng: np.random.Generator, n: int) -> np.ndarray | None:
        if self.subsample >= 1.0:
            return None
        m = max(1, int(round(self.subsample * n)))
        return np.sort(rng.choice(n, size=m, replace=False))

    def _sample_cols(self, rng: np.random.Generator, f: int) -> np.ndarray | None:
        if self.colsample_bytree >= 1.0:
            return None
        m = max(1, int(round(self.colsample_bytree * f)))
        return np.sort(rng.choice(f, size=m, replace=False))
