"""Decision-tree and random-forest regressors.

These are the paper's scikit-learn comparators ("linear regression and
decision forests", Section VI-A), rebuilt on the shared histogram tree
engine in :mod:`repro.ml.tree`.  A squared-error CART tree is the special
case of the second-order engine with ``g = -y``, ``h = 1``,
``lambda = 0`` — the leaf weight reduces to the group mean and the split
gain to variance reduction.  Multi-output targets get vector leaves with
the gain averaged over outputs.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import Binner, FlatEnsemble, Tree, TreeParams, grow_tree

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor"]


class DecisionTreeRegressor:
    """Single multi-output CART regression tree (histogram splits).

    Parameters mirror :class:`repro.ml.tree.TreeParams`; ``n_bins``
    controls histogram resolution.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        n_bins: int = 64,
    ):
        self.params = TreeParams(
            max_depth=max_depth,
            min_child_weight=0.0,
            reg_lambda=0.0,
            gamma=0.0,
            min_samples_leaf=min_samples_leaf,
        )
        self.n_bins = n_bins
        self.binner_: Binner | None = None
        self.tree_: Tree | None = None
        self.n_features_ = 0
        self.n_outputs_ = 0

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.ndim != 2 or Y.shape[0] != X.shape[0]:
            raise ValueError(f"bad shapes X={X.shape} Y={Y.shape}")
        self.n_features_ = X.shape[1]
        self.n_outputs_ = Y.shape[1]
        self.binner_ = Binner(self.n_bins)
        Xb = self.binner_.fit_transform(X)
        # g = -y, h = 1 makes the engine's leaf weight the group mean.
        self.tree_ = grow_tree(
            Xb, -Y, np.ones_like(Y), self.params, self.n_bins
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.tree_ is None or self.binner_ is None:
            raise RuntimeError("predict called before fit")
        Xb = self.binner_.transform(np.asarray(X, dtype=np.float64))
        return self.tree_.predict_binned(Xb)

    def predict_binned(self, Xb: np.ndarray) -> np.ndarray:
        """Predict from pre-binned features (skips ``binner_.transform``)."""
        if self.tree_ is None:
            raise RuntimeError("predict called before fit")
        return self.tree_.predict_binned(np.asarray(Xb))

    def feature_importances(self) -> np.ndarray:
        """Average-gain importances (normalized to sum to 1)."""
        if self.tree_ is None:
            raise RuntimeError("feature_importances called before fit")
        gains = self.tree_.feature_gains()
        counts = self.tree_.feature_split_counts()
        raw = np.where(counts > 0, gains / np.maximum(counts, 1), 0.0)
        s = raw.sum()
        return raw / s if s > 0 else raw


class RandomForestRegressor:
    """Bagged ensemble of multi-output CART trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_leaf, n_bins:
        Per-tree growth controls.
    max_features:
        Fraction of features considered per tree (column subsampling);
        1.0 uses all features.
    bootstrap:
        Sample rows with replacement per tree (classic bagging).
    random_state:
        Seed controlling bootstrap and feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 10,
        min_samples_leaf: int = 2,
        n_bins: int = 64,
        max_features: float = 1.0,
        bootstrap: bool = True,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0 < max_features <= 1:
            raise ValueError("max_features must be in (0, 1]")
        self.n_estimators = n_estimators
        self.params = TreeParams(
            max_depth=max_depth,
            min_child_weight=0.0,
            reg_lambda=0.0,
            gamma=0.0,
            min_samples_leaf=min_samples_leaf,
        )
        self.n_bins = n_bins
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.binner_: Binner | None = None
        self.trees_: list[Tree] = []
        self.n_features_ = 0
        self.n_outputs_ = 0
        # Lazily-built flat stacked ensemble, keyed by strong references
        # to the trees themselves so replacing trees_ (e.g.
        # deserialization, a serve hot-swap) always invalidates it —
        # an id-based key could false-hit on recycled ids.
        self._flat_cache: tuple[tuple[Tree, ...], FlatEnsemble] | None = None

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.ndim != 2 or Y.shape[0] != X.shape[0]:
            raise ValueError(f"bad shapes X={X.shape} Y={Y.shape}")
        n, f = X.shape
        self.n_features_ = f
        self.n_outputs_ = Y.shape[1]
        rng = np.random.default_rng(self.random_state)
        self.binner_ = Binner(self.n_bins)
        Xb = self.binner_.fit_transform(X)
        G = -Y
        H = np.ones_like(Y)
        self.trees_ = []
        self._flat_cache = None
        for _ in range(self.n_estimators):
            rows = rng.integers(0, n, size=n) if self.bootstrap else None
            cols = None
            if self.max_features < 1.0:
                m = max(1, int(round(self.max_features * f)))
                cols = np.sort(rng.choice(f, size=m, replace=False))
            self.trees_.append(
                grow_tree(Xb, G, H, self.params, self.n_bins,
                          rows=rows, feature_subset=cols)
            )
        return self

    #: Forests always carry an uncertainty estimate: the bagging spread.
    has_uncertainty = True

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction over trees; shape ``(n, n_outputs)``."""
        return self.predict_per_tree(X).mean(axis=0)

    def predict_with_uncertainty(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(mean, std)`` over trees, each ``(n, n_outputs)``.

        The mean is computed by the same ``per_tree.mean(axis=0)``
        expression as :meth:`predict`, so it is bit-identical to the
        plain prediction — uncertainty is a second output, never a
        different answer.
        """
        per_tree = self.predict_per_tree(X)
        return per_tree.mean(axis=0), per_tree.std(axis=0)

    def predict_binned_with_uncertainty(
        self, Xb: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(mean, std)`` over trees from pre-binned features."""
        per_tree = self.predict_binned_per_tree(Xb)
        return per_tree.mean(axis=0), per_tree.std(axis=0)

    def predict_per_tree(self, X: np.ndarray) -> np.ndarray:
        """Every tree's prediction; shape ``(n_trees, n, n_outputs)``.

        The spread across trees is the standard bagging uncertainty
        estimate (used by :meth:`repro.core.CrossArchPredictor.
        predict_with_uncertainty`)."""
        if not self.trees_ or self.binner_ is None:
            raise RuntimeError("predict called before fit")
        Xb = self.binner_.transform(np.asarray(X, dtype=np.float64))
        return self.predict_binned_per_tree(Xb)

    def predict_binned(self, Xb: np.ndarray) -> np.ndarray:
        """Mean prediction from pre-binned features; ``(n, n_outputs)``."""
        return self.predict_binned_per_tree(Xb).mean(axis=0)

    def predict_binned_per_tree(self, Xb: np.ndarray) -> np.ndarray:
        """Per-tree predictions from pre-binned features.

        All trees are walked in one flat vectorized pass; the gathered
        leaf values are bit-identical to stacking each tree's own
        ``predict_binned`` output.
        """
        if not self.trees_:
            raise RuntimeError("predict called before fit")
        key = tuple(self.trees_)
        cached = self._flat_cache
        if cached is not None and cached[0] == key:
            flat = cached[1]
        else:
            flat = FlatEnsemble(self.trees_)
            self._flat_cache = (key, flat)
        leaves = flat.predict_leaves(np.asarray(Xb))
        return flat.values[leaves]

    def __getstate__(self) -> dict:
        # Never pickle the derived flat cache: a deserialized copy's
        # trees are new objects so the entry could only sit stale (see
        # GradientBoostedTrees.__getstate__).
        state = self.__dict__.copy()
        state["_flat_cache"] = None
        return state

    def feature_importances(self) -> np.ndarray:
        """Average-gain importances over all trees (normalized)."""
        if not self.trees_:
            raise RuntimeError("feature_importances called before fit")
        gains = np.zeros(self.n_features_)
        counts = np.zeros(self.n_features_)
        for tree in self.trees_:
            gains += tree.feature_gains()
            counts += tree.feature_split_counts()
        raw = np.where(counts > 0, gains / np.maximum(counts, 1), 0.0)
        s = raw.sum()
        return raw / s if s > 0 else raw
