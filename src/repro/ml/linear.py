"""Linear least-squares regressors (scikit-learn comparator substitutes).

:class:`LinearRegression` solves ordinary least squares via
``numpy.linalg.lstsq`` (rank-robust SVD path); :class:`RidgeRegression`
adds an L2 penalty solved in closed form.  Both support multi-output
targets, which is how they predict the 4-component RPVs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearRegression", "RidgeRegression"]


class LinearRegression:
    """Ordinary least squares with an intercept.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0], [1.0], [2.0]])
    >>> y = np.array([1.0, 3.0, 5.0])
    >>> m = LinearRegression().fit(X, y)
    >>> np.allclose(m.predict(np.array([[3.0]])), [[7.0]])
    True
    """

    def __init__(self) -> None:
        self.coef_: np.ndarray | None = None  # (features, outputs)
        self.intercept_: np.ndarray | None = None  # (outputs,)
        self.n_features_ = 0
        self.n_outputs_ = 0

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "LinearRegression":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.ndim != 2 or Y.shape[0] != X.shape[0]:
            raise ValueError(f"bad shapes X={X.shape} Y={Y.shape}")
        self.n_features_ = X.shape[1]
        self.n_outputs_ = Y.shape[1]
        # Center so the intercept absorbs the means; improves conditioning.
        x_mean = X.mean(axis=0)
        y_mean = Y.mean(axis=0)
        coef, *_ = np.linalg.lstsq(X - x_mean, Y - y_mean, rcond=None)
        self.coef_ = coef
        self.intercept_ = y_mean - x_mean @ coef
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None or self.intercept_ is None:
            raise RuntimeError("predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has shape {X.shape}, expected (n, {self.n_features_})"
            )
        return X @ self.coef_ + self.intercept_


class RidgeRegression(LinearRegression):
    """L2-regularized least squares, solved in closed form.

    Parameters
    ----------
    alpha:
        Regularization strength; 0 recovers OLS (on full-rank problems).
    """

    def __init__(self, alpha: float = 1.0):
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "RidgeRegression":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.ndim != 2 or Y.shape[0] != X.shape[0]:
            raise ValueError(f"bad shapes X={X.shape} Y={Y.shape}")
        self.n_features_ = X.shape[1]
        self.n_outputs_ = Y.shape[1]
        x_mean = X.mean(axis=0)
        y_mean = Y.mean(axis=0)
        Xc = X - x_mean
        A = Xc.T @ Xc + self.alpha * np.eye(self.n_features_)
        self.coef_ = np.linalg.solve(A, Xc.T @ (Y - y_mean))
        self.intercept_ = y_mean - x_mean @ self.coef_
        return self
