"""Hyper-parameter grid search with cross-validation.

A minimal GridSearch utility over the :mod:`repro.ml` estimators: every
combination in the parameter grid is scored with k-fold CV MAE (the
paper's protocol) and the best configuration is refit on the full data.
Deterministic given the CV seed; combinations are enumerated in a
stable order so ties resolve reproducibly.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro.ml.model_selection import cross_validate

__all__ = ["GridSearchCV"]


@dataclass
class _Candidate:
    params: dict
    cv_mae: float


@dataclass
class GridSearchCV:
    """Exhaustive grid search scored by k-fold CV MAE.

    Parameters
    ----------
    estimator_factory:
        Callable ``(**params) -> estimator`` (e.g. the
        :class:`GradientBoostedTrees` class itself).
    param_grid:
        Mapping from parameter name to the values to sweep.
    n_splits, random_state:
        Cross-validation protocol.

    After :meth:`fit`: ``best_params_``, ``best_score_`` (CV MAE),
    ``best_estimator_`` (refit on all data), and ``results_`` (every
    candidate with its score).
    """

    estimator_factory: Callable[..., object]
    param_grid: Mapping[str, Sequence]
    n_splits: int = 5
    random_state: int | None = 0

    best_params_: dict | None = field(default=None, init=False)
    best_score_: float = field(default=float("inf"), init=False)
    best_estimator_: object | None = field(default=None, init=False)
    results_: list[dict] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not self.param_grid:
            raise ValueError("param_grid must not be empty")
        for name, values in self.param_grid.items():
            if not values:
                raise ValueError(f"empty value list for {name!r}")

    def _candidates(self):
        names = sorted(self.param_grid)
        for combo in product(*(self.param_grid[n] for n in names)):
            yield dict(zip(names, combo))

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "GridSearchCV":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        self.results_ = []
        for params in self._candidates():
            cv = cross_validate(
                lambda p=params: self.estimator_factory(**p),
                X, Y, n_splits=self.n_splits,
                random_state=self.random_state,
            )
            self.results_.append({"params": params, "cv_mae": cv["mae"]})
            if cv["mae"] < self.best_score_:
                self.best_score_ = cv["mae"]
                self.best_params_ = params
        assert self.best_params_ is not None
        self.best_estimator_ = self.estimator_factory(**self.best_params_)
        self.best_estimator_.fit(X, Y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.best_estimator_ is None:
            raise RuntimeError("predict called before fit")
        return self.best_estimator_.predict(X)
