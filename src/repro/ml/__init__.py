"""From-scratch machine-learning stack used by the reproduction.

The paper trains an XGBoost regressor (v1.7.1) and compares it against
scikit-learn linear regression, a decision forest, and a mean-prediction
baseline (Section VI).  Neither XGBoost nor scikit-learn is available in
this environment, so this package implements the required model family
from scratch on NumPy:

* :class:`GradientBoostedTrees` — regularized second-order gradient tree
  boosting with histogram splits, shrinkage, row/column subsampling, and
  average-gain feature importances (the paper's importance definition).
* :class:`RandomForestRegressor` — bagged variance-reduction trees.
* :class:`LinearRegression` / :class:`RidgeRegression` — least squares.
* :class:`MeanPredictor` — the paper's baseline that predicts the mean
  training-set RPV for every test sample.
* metrics: :func:`mean_absolute_error`, :func:`mean_squared_error`,
  :func:`r2_score`, and the paper's :func:`same_order_score`.
* model selection: :func:`train_test_split`, :class:`KFold`,
  :func:`cross_validate` (the paper's 90/10 split + 5-fold CV protocol).

All estimators share the ``fit(X, Y) -> self`` / ``predict(X) -> Y``
protocol with dense float64 arrays; multi-output targets are first-class
(``Y`` of shape ``(n, k)``) because RPVs are 4-vectors.
"""

from repro.ml.baseline import MeanPredictor
from repro.ml.boosting import GradientBoostedTrees
from repro.ml.forest import DecisionTreeRegressor, RandomForestRegressor
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.metrics import (
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    same_order_score,
)
from repro.ml.model_selection import KFold, cross_validate, train_test_split
from repro.ml.neighbors import KNeighborsRegressor
from repro.ml.serialization import (
    MODEL_FORMAT_VERSION,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.ml.tuning import GridSearchCV
from repro.registry import Registry

#: Named model factories: each maps ``(random_state=None, **kwargs)`` to
#: a fitted-protocol estimator, with the paper's tuned defaults baked in.
#: ``"xgboost"`` is the paper's best model (Section VI); lookups of
#: unknown names raise a typed UnknownNameError with suggestions.
MODELS: Registry = Registry("model")


@MODELS.register("xgboost")
def _make_xgboost(random_state: int | None = None, **kwargs):
    # Vector-leaf trees ("multi_output_tree") predict the four RPV
    # components jointly, which preserves cross-component orderings
    # (the SOS metric) far better than independent per-output
    # ensembles; gain is averaged over outputs exactly as the paper
    # describes its importance computation.
    defaults = dict(n_estimators=400, max_depth=9, learning_rate=0.07,
                    multi_strategy="multi_output_tree")
    defaults.update(kwargs)
    return GradientBoostedTrees(random_state=random_state, **defaults)


@MODELS.register("forest")
def _make_forest(random_state: int | None = None, **kwargs):
    defaults = dict(n_estimators=40, max_depth=14, min_samples_leaf=2)
    defaults.update(kwargs)
    return RandomForestRegressor(random_state=random_state, **defaults)


@MODELS.register("linear")
def _make_linear(random_state: int | None = None, **kwargs):
    return LinearRegression()


@MODELS.register("mean")
def _make_mean(random_state: int | None = None, **kwargs):
    return MeanPredictor()


__all__ = [
    "MODELS",
    "GradientBoostedTrees",
    "RandomForestRegressor",
    "DecisionTreeRegressor",
    "LinearRegression",
    "RidgeRegression",
    "MeanPredictor",
    "KNeighborsRegressor",
    "mean_absolute_error",
    "mean_squared_error",
    "r2_score",
    "same_order_score",
    "train_test_split",
    "KFold",
    "cross_validate",
    "MODEL_FORMAT_VERSION",
    "model_to_dict",
    "model_from_dict",
    "save_model",
    "load_model",
    "GridSearchCV",
]
