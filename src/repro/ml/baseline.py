"""Mean-prediction baseline.

The paper tests "against mean prediction as a baseline for the ML models.
This regressor guesses the mean RPV in the training set for all samples
in the test set" (Section VI-A).  XGBoost's reported MAE of 0.11 is an
81.6% improvement over this baseline, which anchors the claim that the
model correlates counters with performance rather than memorizing the
runtime distribution.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MeanPredictor"]


class MeanPredictor:
    """Predicts the training-set mean target for every sample."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.n_features_ = 0
        self.n_outputs_ = 0

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "MeanPredictor":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.ndim != 2 or Y.shape[0] != X.shape[0]:
            raise ValueError(f"bad shapes X={X.shape} Y={Y.shape}")
        self.n_features_ = X.shape[1]
        self.n_outputs_ = Y.shape[1]
        self.mean_ = Y.mean(axis=0)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        return np.tile(self.mean_, (X.shape[0], 1))
