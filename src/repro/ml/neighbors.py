"""k-nearest-neighbors regression.

The paper's related-work section highlights k-NN among the standard ML
techniques used for performance modeling (Section III-A cites its use
for MPI collective tuning).  This implementation rounds out the model
zoo as an instance-based comparator: features are standardized at fit
time and queries use a SciPy cKDTree, with uniform or inverse-distance
weighting over the k neighbors.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["KNeighborsRegressor"]


class KNeighborsRegressor:
    """k-NN regression over standardized features.

    Parameters
    ----------
    n_neighbors:
        Neighborhood size.
    weights:
        ``"uniform"`` averages neighbors equally; ``"distance"`` weights
        by inverse distance (exact matches dominate).
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self._tree: cKDTree | None = None
        self._Y: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self.n_features_ = 0
        self.n_outputs_ = 0

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "KNeighborsRegressor":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[:, None]
        if X.ndim != 2 or Y.shape[0] != X.shape[0]:
            raise ValueError(f"bad shapes X={X.shape} Y={Y.shape}")
        if X.shape[0] < self.n_neighbors:
            raise ValueError(
                f"need >= {self.n_neighbors} samples, got {X.shape[0]}"
            )
        self.n_features_ = X.shape[1]
        self.n_outputs_ = Y.shape[1]
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0] = 1.0
        self._std = std
        self._tree = cKDTree((X - self._mean) / std)
        self._Y = Y.copy()
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._tree is None or self._Y is None:
            raise RuntimeError("predict called before fit")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has shape {X.shape}, expected (n, {self.n_features_})"
            )
        Xs = (X - self._mean) / self._std
        dist, idx = self._tree.query(Xs, k=self.n_neighbors)
        if self.n_neighbors == 1:
            dist = dist[:, None]
            idx = idx[:, None]
        neighbors = self._Y[idx]  # (n, k, outputs)
        if self.weights == "uniform":
            return neighbors.mean(axis=1)
        # Inverse-distance weights; exact hits (d == 0) take over.
        with np.errstate(divide="ignore"):
            w = 1.0 / dist
        exact = np.isinf(w)
        w = np.where(exact.any(axis=1, keepdims=True),
                     exact.astype(float), w)
        w = w / w.sum(axis=1, keepdims=True)
        return (neighbors * w[:, :, None]).sum(axis=1)
