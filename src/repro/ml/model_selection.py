"""Train/test splitting and cross-validation (the paper's protocol).

Section VI-A: "10% of the data is set aside as a testing data set, while
the other 90% is shown to the model ... the data is further split into
five folds as part of k-fold cross-validation.  The model is trained on
four out of the five folds at a time, while the other is used as
validation.  This is done for all five combinations and the average MAE
is reported."
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from repro.ml.metrics import mean_absolute_error, same_order_score

__all__ = ["train_test_split", "KFold", "cross_validate", "GroupShuffleSplit"]


def train_test_split(
    n: int,
    test_fraction: float = 0.1,
    random_state: int | None = None,
    groups: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random index split into (train, test).

    When *groups* is given (one label per row), whole groups are assigned
    to a side so no group straddles the split — used to keep all runs of
    the same application-input pair on one side when desired.
    """
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    rng = np.random.default_rng(random_state)
    if groups is None:
        perm = rng.permutation(n)
        n_test = max(1, int(round(test_fraction * n)))
        return np.sort(perm[n_test:]), np.sort(perm[:n_test])
    groups = np.asarray(groups)
    if groups.shape != (n,):
        raise ValueError(f"groups must have shape ({n},)")
    uniq = np.unique(groups.astype(str))
    perm = rng.permutation(len(uniq))
    n_test_groups = max(1, int(round(test_fraction * len(uniq))))
    test_groups = set(uniq[perm[:n_test_groups]])
    mask = np.array([str(v) in test_groups for v in groups])
    return np.flatnonzero(~mask), np.flatnonzero(mask)


class KFold:
    """K-fold cross-validation index generator.

    Yields ``(train_idx, val_idx)`` pairs covering every sample exactly
    once as validation.
    """

    def __init__(self, n_splits: int = 5, shuffle: bool = True,
                 random_state: int | None = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        indices = np.arange(n)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            indices = rng.permutation(n)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=np.int64)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            val = np.sort(indices[start : start + size])
            train = np.sort(np.concatenate(
                [indices[:start], indices[start + size :]]
            ))
            yield train, val
            start += size


def cross_validate(
    model_factory: Callable[[], object],
    X: np.ndarray,
    Y: np.ndarray,
    n_splits: int = 5,
    random_state: int | None = None,
) -> dict[str, float]:
    """Run k-fold CV and return mean validation MAE / SOS across folds.

    *model_factory* builds a fresh estimator per fold (so folds never
    share state).  Returns ``{"mae": ..., "sos": ..., "mae_per_fold": [...]}``.
    """
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    maes: list[float] = []
    soses: list[float] = []
    for train_idx, val_idx in KFold(n_splits, random_state=random_state).split(len(X)):
        model = model_factory()
        model.fit(X[train_idx], Y[train_idx])
        pred = model.predict(X[val_idx])
        maes.append(mean_absolute_error(Y[val_idx], pred))
        if Y.ndim == 2 and Y.shape[1] >= 2:
            soses.append(same_order_score(Y[val_idx], pred))
    out = {"mae": float(np.mean(maes)), "mae_per_fold": maes}
    if soses:
        out["sos"] = float(np.mean(soses))
        out["sos_per_fold"] = soses
    return out


class GroupShuffleSplit:
    """Repeated group-aware random splits (used for leave-group-out sweeps)."""

    def __init__(self, test_fraction: float = 0.1, n_repeats: int = 1,
                 random_state: int | None = None):
        self.test_fraction = test_fraction
        self.n_repeats = n_repeats
        self.random_state = random_state

    def split(self, groups: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        groups = np.asarray(groups)
        seed_seq = np.random.SeedSequence(self.random_state)
        for child in seed_seq.spawn(self.n_repeats):
            seed = int(child.generate_state(1)[0])
            yield train_test_split(
                len(groups), self.test_fraction, random_state=seed, groups=groups
            )
