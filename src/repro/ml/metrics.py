"""Evaluation metrics (Section VI-C of the paper).

* :func:`mean_absolute_error` — average elementwise |error| over all RPV
  components; the paper's headline metric (0.11 for XGBoost).
* :func:`same_order_score` — fraction of samples whose predicted RPV is
  in exactly the same rank order as the true RPV; the paper's secondary
  metric (0.86 for XGBoost).
* :func:`mean_squared_error` and :func:`r2_score` for completeness
  (mentioned in Section II-B as common regression objectives).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_absolute_error",
    "mean_squared_error",
    "r2_score",
    "same_order_score",
]


def _validate(y_true: np.ndarray, y_pred: np.ndarray):
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.ndim == 1:
        y_true = y_true[:, None]
    if y_pred.ndim == 1:
        y_pred = y_pred[:, None]
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty input")
    return y_true, y_pred


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean over samples and outputs of ``|y_pred - y_true|``."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.abs(y_pred - y_true).mean())


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean over samples and outputs of ``(y_pred - y_true)^2``."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(((y_pred - y_true) ** 2).mean())


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination, uniformly averaged over outputs.

    Returns 0 for outputs with zero variance where predictions are exact,
    matching the usual convention.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = ((y_true - y_pred) ** 2).sum(axis=0)
    ss_tot = ((y_true - y_true.mean(axis=0)) ** 2).sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        r2 = 1.0 - ss_res / ss_tot
    r2 = np.where(ss_tot == 0, np.where(ss_res == 0, 1.0, 0.0), r2)
    return float(r2.mean())


def same_order_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of rows where predicted and true vectors share rank order.

    Two vectors are "in the same order" when, for every position ``i``,
    the i-th elements are the n-th largest in their respective vectors —
    i.e. ``argsort`` of the two rows agree.  Ranking uses a stable sort so
    exact ties resolve identically on both sides.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    if y_true.shape[1] < 2:
        raise ValueError("same_order_score needs vectors of length >= 2")
    order_true = np.argsort(y_true, axis=1, kind="stable")
    order_pred = np.argsort(y_pred, axis=1, kind="stable")
    return float((order_true == order_pred).all(axis=1).mean())
