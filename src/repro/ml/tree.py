"""Histogram-based regression tree engine.

This is the shared kernel under both :class:`repro.ml.boosting.
GradientBoostedTrees` and :class:`repro.ml.forest.RandomForestRegressor`.
It grows a single CART-style binary tree on *pre-binned* features using
the second-order (XGBoost) split objective:

    gain = 1/2 * [ G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda)
                   - G^2/(H+lambda) ] - gamma

with vector-valued gradients ``g`` of shape ``(n, k)`` (one column per
regression target) and matching hessians ``h``.  Per-output gains are
averaged across the ``k`` outputs, which is exactly the multi-target gain
definition the paper uses for its feature-importance analysis ("the gain
is averaged over each output", Section VI-B).

Fitting a plain squared-error tree (for the random forest) is the special
case ``g = -y, h = 1, lambda = 0``: the leaf weight ``-G/(H+lambda)``
becomes the group mean and the gain becomes the between-group sum of
squares, i.e. classic variance reduction.

Everything is vectorized: histograms are built with ``np.bincount`` per
feature and split scores for all (feature, bin) pairs are evaluated with
cumulative sums, so tree growth is O(features * bins) per node plus one
O(n) partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import native
from repro.errors import PackingError

__all__ = ["TreeParams", "Binner", "Tree", "FlatEnsemble", "grow_tree"]

_MAX_BINS = 256  # bins are stored in uint8

# Cap on simultaneous (tree, row) traversal states in FlatEnsemble
# prediction.  Chunking rows keeps every per-level temporary (a few
# int32 arrays of this length) resident in L2, which is what bounds
# routing throughput; larger chunks measurably regress.
_LEAF_STATE_BUDGET = 1 << 16


@dataclass(frozen=True)
class TreeParams:
    """Hyper-parameters controlling tree growth.

    Attributes
    ----------
    max_depth:
        Maximum tree depth (root is depth 0).
    min_child_weight:
        Minimum sum of hessians (averaged over outputs) on each side of a
        split.  With unit hessians this is a minimum leaf sample count.
    reg_lambda:
        L2 regularization on leaf weights (XGBoost ``lambda``).
    gamma:
        Minimum gain required to make a split (XGBoost ``gamma``).
    min_samples_leaf:
        Hard minimum number of rows in each leaf.
    """

    max_depth: int = 6
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_samples_leaf: int = 1

    def __post_init__(self) -> None:
        if self.max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if self.reg_lambda < 0 or self.gamma < 0:
            raise ValueError("reg_lambda and gamma must be non-negative")


class Binner:
    """Quantile feature binner mapping float features to uint8 bin codes.

    Bin edges are per-feature quantiles computed on the training matrix
    (``fit``).  ``transform`` maps values to bin indices via
    ``np.searchsorted``; values beyond the training range clamp to the
    first/last bin, which makes prediction on unseen data well defined.
    """

    def __init__(self, n_bins: int = 64):
        if not 2 <= n_bins <= _MAX_BINS:
            raise PackingError(
                f"n_bins must be in [2, {_MAX_BINS}]: bin codes are "
                f"packed end-to-end as uint8, so {n_bins} bins cannot "
                "be represented"
            )
        self.n_bins = n_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "Binner":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        self.edges_ = []
        qs = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        for j in range(X.shape[1]):
            col = X[:, j]
            finite = col[np.isfinite(col)]
            if finite.size == 0:
                self.edges_.append(np.empty(0))
                continue
            edges = np.unique(np.quantile(finite, qs))
            self.edges_.append(edges)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("Binner.transform called before fit")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.edges_):
            raise ValueError(
                f"X has shape {X.shape}, expected (n, {len(self.edges_)})"
            )
        out = np.empty(X.shape, dtype=np.uint8)
        for j, edges in enumerate(self.edges_):
            if edges.size == 0:
                out[:, j] = 0
            else:
                out[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def bin_upper_value(self, feature: int, bin_idx: int) -> float:
        """Numeric threshold for "go left iff value in bins <= bin_idx"."""
        assert self.edges_ is not None
        edges = self.edges_[feature]
        if bin_idx < len(edges):
            return float(edges[bin_idx])
        return np.inf


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int = -1
    bin_threshold: int = 0
    value: np.ndarray = field(default_factory=lambda: np.zeros(1))
    left: int = -1
    right: int = -1
    gain: float = 0.0
    n_samples: int = 0


class Tree:
    """A grown tree: flat node list plus prediction / importance methods."""

    def __init__(self, nodes: list[_Node], n_outputs: int, n_features: int):
        self._nodes = nodes
        self.n_outputs = n_outputs
        self.n_features = n_features
        # Struct-of-arrays mirror for vectorized prediction.
        self._feat = np.array([n.feature for n in nodes], dtype=np.int64)
        self._thr = np.array([n.bin_threshold for n in nodes], dtype=np.int64)
        self._left = np.array([n.left for n in nodes], dtype=np.int64)
        self._right = np.array([n.right for n in nodes], dtype=np.int64)
        self._values = np.array([n.value for n in nodes], dtype=np.float64)
        if self._values.ndim == 1:
            self._values = self._values[:, None]
        # Node statistics are immutable once grown; cache them at
        # construction instead of recomputing O(n_nodes) per access.
        self._n_leaves = int(np.count_nonzero(self._feat < 0))
        depth = np.zeros(len(nodes), dtype=np.int64)
        best = 0
        for i, node in enumerate(nodes):
            if node.feature >= 0:
                d = depth[i] + 1
                depth[node.left] = depth[node.right] = d
                if d > best:
                    best = d
        self._max_depth_reached = int(best)

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def n_leaves(self) -> int:
        return self._n_leaves

    @property
    def max_depth_reached(self) -> int:
        return self._max_depth_reached

    def predict_binned(self, Xb: np.ndarray) -> np.ndarray:
        """Predict from pre-binned uint8 features; returns ``(n, k)``."""
        n = Xb.shape[0]
        node_idx = np.zeros(n, dtype=np.int64)
        active = np.arange(n)
        # Vectorized routing: every iteration pushes all still-internal rows
        # one level down; terminates after at most max_depth iterations.
        while active.size:
            feats = self._feat[node_idx[active]]
            internal = feats >= 0
            active = active[internal]
            if not active.size:
                break
            idx = node_idx[active]
            go_left = Xb[active, self._feat[idx]] <= self._thr[idx]
            node_idx[active] = np.where(
                go_left, self._left[idx], self._right[idx]
            )
        return self._values[node_idx]

    def feature_gains(self) -> np.ndarray:
        """Total split gain accumulated per feature (length ``n_features``)."""
        gains = np.zeros(self.n_features)
        for node in self._nodes:
            if node.feature >= 0:
                gains[node.feature] += node.gain
        return gains

    def feature_split_counts(self) -> np.ndarray:
        """Number of splits using each feature (length ``n_features``)."""
        counts = np.zeros(self.n_features)
        for node in self._nodes:
            if node.feature >= 0:
                counts[node.feature] += 1
        return counts


class FlatEnsemble:
    """Every tree of a fitted ensemble stacked into one struct-of-arrays.

    Node attributes (split feature, bin threshold, children, leaf
    values) of all trees are concatenated into single flat arrays with
    child indices rebased to absolute positions, so one vectorized
    routing pass walks *all trees for all rows simultaneously* — the
    per-level work is a handful of numpy gathers over every live
    (tree, row) state instead of a Python loop over trees.

    Leaf values are exposed via :attr:`values` and leaf positions via
    :meth:`predict_leaves`; callers gather and accumulate in whatever
    order preserves their exact float semantics (see
    ``GradientBoostedTrees.predict_binned``).  Rows are processed in
    chunks so peak memory stays bounded for any ensemble size.
    """

    def __init__(self, trees: list[Tree]):
        if not trees:
            raise ValueError("FlatEnsemble needs at least one tree")
        k = trees[0]._values.shape[1]
        for t in trees:
            if t._values.shape[1] != k:
                raise ValueError("trees disagree on output width")
        self.n_trees = len(trees)
        self.n_outputs = k
        counts = np.array([t.n_nodes for t in trees], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        total = int(offsets[-1])
        if total >= 1 << 30:  # 2*total must fit in int32 (children index)
            raise ValueError("ensemble too large for int32 node indexing")
        #: Root node index of each tree in the flat arrays.
        self.roots = offsets[:-1].astype(np.int32)
        feat = np.concatenate([t._feat for t in trees])
        thr = np.concatenate([t._thr for t in trees])
        left = np.concatenate([
            np.where(t._left >= 0, t._left + off, -1)
            for t, off in zip(trees, offsets)
        ])
        right = np.concatenate([
            np.where(t._right >= 0, t._right + off, -1)
            for t, off in zip(trees, offsets)
        ])
        # Branchless self-loop encoding: a leaf routes to itself on a
        # dummy feature, so the level loop needs no active-set
        # bookkeeping — every state advances every level and parked
        # states stay parked.  Feature and threshold are packed into
        # one int32 (feature in the high bits, uint8 bin threshold in
        # the low byte) and both children live interleaved in one
        # array indexed by ``2*node + go_left``, so each level costs
        # exactly three gathers.  Gather traffic is what bounds
        # routing throughput.
        is_leaf = feat < 0
        node_ids = np.arange(total, dtype=np.int32)
        feat32 = np.where(is_leaf, 0, feat).astype(np.int32)
        thr32 = np.where(is_leaf, 0, thr).astype(np.int32)
        self._featthr = (feat32 << 8) | thr32
        self._children = np.empty(2 * total, dtype=np.int32)
        self._children[0::2] = np.where(is_leaf, node_ids, right)
        self._children[1::2] = np.where(is_leaf, node_ids, left)
        #: Deepest tree in the stack — the number of routing levels.
        self.max_depth = max(t.max_depth_reached for t in trees)
        #: ``(total_nodes, n_outputs)`` leaf/internal values; indexing
        #: with :meth:`predict_leaves` output gives per-tree predictions
        #: bit-identical to ``Tree.predict_binned``.
        self.values = np.concatenate([t._values for t in trees], axis=0)

    def predict_leaves(self, Xb: np.ndarray) -> np.ndarray:
        """Leaf node index per (tree, row); returns ``(n_trees, n)``.

        ``Xb`` is the pre-binned uint8 feature matrix.  Routing
        decisions are integer comparisons, so the resulting leaves are
        exactly those each tree's own traversal reaches — on both the
        native path and the numpy fallback (same uint8 compare, same
        child arrays), so which path runs is unobservable except in
        speed.
        """
        Xb = np.ascontiguousarray(Xb, dtype=np.uint8)
        n, n_features = Xb.shape
        T = self.n_trees
        featthr = self._featthr
        children = self._children
        if n:
            out = np.empty((T, n), dtype=np.int32)
            if native.route_leaves(
                featthr, children, self.roots, Xb, self.max_depth, out
            ):
                return out
        Xf = Xb.reshape(-1)
        out = np.empty((T, n), dtype=np.int32)
        chunk = max(128, _LEAF_STATE_BUDGET // T)
        for lo in range(0, n, chunk):
            hi = min(n, lo + chunk)
            c = hi - lo
            # One state per (tree, row), laid out tree-major so the
            # reshape below is free.  Rows address Xb through a
            # precomputed flat offset (row * n_features), turning the
            # 2-D fancy gather into a 1-D one.
            node = np.repeat(self.roots, c)
            # int32 offsets unless row*n_features could overflow.
            off_dtype = np.int32 if n * n_features < (1 << 31) else np.int64
            row_off = np.tile(
                np.arange(lo, hi, dtype=off_dtype) * n_features, T
            )
            for _ in range(self.max_depth):
                ft = featthr[node]
                go_left = Xf[row_off + (ft >> 8)] <= (ft & 255)
                node = children[(node << 1) + go_left]
            out[:, lo:hi] = node.reshape(T, c)
        return out


def grow_tree(
    Xb: np.ndarray,
    g: np.ndarray,
    h: np.ndarray,
    params: TreeParams,
    n_bins: int,
    rows: np.ndarray | None = None,
    feature_subset: np.ndarray | None = None,
    leaf_scale: float = 1.0,
) -> Tree:
    """Grow one tree on pre-binned features with gradient/hessian targets.

    Parameters
    ----------
    Xb:
        ``(n, f)`` uint8 binned feature matrix.
    g, h:
        ``(n, k)`` gradients and hessians (second-order objective); for a
        plain squared-error tree pass ``g = -y`` and ``h = ones_like(y)``.
    params:
        Growth hyper-parameters.
    n_bins:
        Number of bins used when ``Xb`` was produced.
    rows:
        Optional row subset (e.g. a bootstrap sample or subsample mask).
    feature_subset:
        Optional array of feature indices eligible for splitting
        (column subsampling); all features if None.
    leaf_scale:
        Multiplier applied to leaf weights (the boosting learning rate is
        folded in here so prediction needs no extra pass).
    """
    Xb = np.ascontiguousarray(Xb)
    g = np.atleast_2d(np.asarray(g, dtype=np.float64))
    h = np.atleast_2d(np.asarray(h, dtype=np.float64))
    if g.shape[0] == 1 and Xb.shape[0] != 1:
        g, h = g.T, h.T
    n, n_features = Xb.shape
    k = g.shape[1]
    if g.shape != h.shape or g.shape[0] != n:
        raise ValueError(
            f"shape mismatch: X {Xb.shape}, g {g.shape}, h {h.shape}"
        )
    if rows is None:
        rows = np.arange(n, dtype=np.int64)
    features = (
        np.arange(n_features, dtype=np.int64)
        if feature_subset is None
        else np.asarray(feature_subset, dtype=np.int64)
    )

    nodes: list[_Node] = []
    lam = params.reg_lambda

    def leaf_value(G: np.ndarray, H: np.ndarray) -> np.ndarray:
        return -leaf_scale * G / (H + lam)

    def node_score(G: np.ndarray, H: np.ndarray) -> float:
        # Mean over outputs of G^2/(H+lambda); the 1/2 factor cancels in
        # gain comparisons but is kept so gains match the XGBoost scale.
        return float(np.mean(G * G / (H + lam)))

    fs = len(features)
    offsets = np.arange(fs, dtype=np.int64) * n_bins
    size = fs * n_bins
    # Pre-offset bin codes once per tree: code[i, j] identifies the
    # (feature j, bin) cell directly, so per-node histogram building is
    # one bincount per target over the node's rows.
    codes = Xb[:, features].astype(np.int64) + offsets

    def build_hist(idx: np.ndarray):
        flat = codes[idx].ravel()
        counts = np.bincount(flat, minlength=size).reshape(fs, n_bins)
        Gh = np.empty((fs, n_bins, k))
        Hh = np.empty((fs, n_bins, k))
        for out in range(k):
            Gh[:, :, out] = np.bincount(
                flat, weights=np.repeat(g[idx, out], fs), minlength=size
            ).reshape(fs, n_bins)
            Hh[:, :, out] = np.bincount(
                flat, weights=np.repeat(h[idx, out], fs), minlength=size
            ).reshape(fs, n_bins)
        return counts, Gh, Hh

    # Stack of (node_index, row_indices, depth, hist-or-None).  The
    # histogram-subtraction trick: a node's histogram is either built
    # directly (root, and the *smaller* child of each split) or derived
    # as parent-minus-sibling (the larger child), roughly halving
    # histogram work for deep trees.
    root = _Node()
    nodes.append(root)
    stack: list = [(0, rows, 0, None)]

    while stack:
        node_id, idx, depth, hist = stack.pop()
        node = nodes[node_id]
        if hist is None:
            hist = build_hist(idx)
        counts, Gh, Hh = hist
        # Per-output totals; every feature's histogram sums to the same
        # totals, so read them off feature 0.
        G = Gh[0].sum(axis=0)
        H = Hh[0].sum(axis=0)
        node.n_samples = len(idx)
        node.value = leaf_value(G, H)

        if depth >= params.max_depth or len(idx) < 2 * params.min_samples_leaf:
            continue

        m = len(idx)
        parent_score = node_score(G, H)

        GL = np.cumsum(Gh, axis=1)[:, :-1, :]        # (fs, bins-1, k)
        HL = np.cumsum(Hh, axis=1)[:, :-1, :]
        CL = np.cumsum(counts, axis=1)[:, :-1]       # (fs, bins-1)
        GR = G - GL
        HR = H - HL
        CR = m - CL
        # gain = 1/2*(S_L + S_R - S_parent) - gamma, S = mean_k G^2/(H+lam)
        # Empty-bin prefixes divide 0/0; those candidates are masked out
        # by `valid` below, so silence the intermediate warnings.
        with np.errstate(divide="ignore", invalid="ignore"):
            SL = np.mean(GL * GL / (HL + lam), axis=2)
            SR = np.mean(GR * GR / (HR + lam), axis=2)
        score = 0.5 * (SL + SR - parent_score) - params.gamma
        valid = (
            (CL >= params.min_samples_leaf)
            & (CR >= params.min_samples_leaf)
            & (HL.mean(axis=2) >= params.min_child_weight)
            & (HR.mean(axis=2) >= params.min_child_weight)
        )
        score = np.where(valid & np.isfinite(score), score, -np.inf)
        best_flat = int(np.argmax(score))
        best_gain = float(score.ravel()[best_flat])
        if not np.isfinite(best_gain) or best_gain <= 0.0:
            continue
        best_feature = int(features[best_flat // (n_bins - 1)])
        best_bin = int(best_flat % (n_bins - 1))

        go_left = Xb[idx, best_feature] <= best_bin
        left_idx = idx[go_left]
        right_idx = idx[~go_left]
        if len(left_idx) == 0 or len(right_idx) == 0:
            continue

        node.feature = best_feature
        node.bin_threshold = best_bin
        node.gain = best_gain
        node.left = len(nodes)
        nodes.append(_Node())
        node.right = len(nodes)
        nodes.append(_Node())

        # Build the smaller child's histogram; derive the larger by
        # subtraction from the parent's.
        if len(left_idx) <= len(right_idx):
            small_idx, small_slot = left_idx, node.left
            large_idx, large_slot = right_idx, node.right
        else:
            small_idx, small_slot = right_idx, node.right
            large_idx, large_slot = left_idx, node.left
        small_hist = build_hist(small_idx)
        large_hist = (
            counts - small_hist[0],
            Gh - small_hist[1],
            Hh - small_hist[2],
        )
        stack.append((small_slot, small_idx, depth + 1, small_hist))
        stack.append((large_slot, large_idx, depth + 1, large_hist))

    return Tree(nodes, n_outputs=k, n_features=n_features)
