"""Portable JSON serialization for the from-scratch models.

The paper "exports" its trained model for downstream scheduling use.
Pickle works within one Python ecosystem; this module adds a portable,
inspectable JSON format covering every model class in :mod:`repro.ml`
(trees are serialized node-by-node with their binning edges, linear
models by coefficients).  ``model_to_dict`` / ``model_from_dict``
round-trip exactly: predictions from a restored model are bit-identical.

Every payload carries :data:`MODEL_FORMAT_VERSION`; a missing or
mismatched version, an unknown ``kind``, or a structurally incomplete
payload raises a typed :class:`~repro.errors.SerializationError`
(instead of mis-deserializing a future format or leaking a raw
``KeyError`` from deep inside the decoder).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import SerializationError
from repro.ml.baseline import MeanPredictor
from repro.ml.boosting import GradientBoostedTrees
from repro.ml.forest import DecisionTreeRegressor, RandomForestRegressor
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.tree import Binner, Tree, _Node

__all__ = [
    "MODEL_FORMAT_VERSION",
    "model_to_dict",
    "model_from_dict",
    "save_model",
    "load_model",
]

#: On-disk model format.  Version 1 was the unversioned launch format
#: (identical fields minus ``format_version``); readers accept payloads
#: without the field as version 1 for backward compatibility and reject
#: anything else that does not match.
MODEL_FORMAT_VERSION = 2


# ---------------------------------------------------------------------------
# Tree / binner helpers
# ---------------------------------------------------------------------------
def _tree_to_dict(tree: Tree) -> dict:
    return {
        "n_outputs": tree.n_outputs,
        "n_features": tree.n_features,
        "nodes": [
            {
                "feature": node.feature,
                "bin_threshold": node.bin_threshold,
                "value": [float(v) for v in np.atleast_1d(node.value)],
                "left": node.left,
                "right": node.right,
                "gain": node.gain,
                "n_samples": node.n_samples,
            }
            for node in tree._nodes
        ],
    }


def _tree_from_dict(data: dict) -> Tree:
    nodes = []
    for spec in data["nodes"]:
        node = _Node(
            feature=spec["feature"],
            bin_threshold=spec["bin_threshold"],
            value=np.array(spec["value"], dtype=np.float64),
            left=spec["left"],
            right=spec["right"],
            gain=spec["gain"],
            n_samples=spec["n_samples"],
        )
        nodes.append(node)
    return Tree(nodes, n_outputs=data["n_outputs"],
                n_features=data["n_features"])


def _binner_to_dict(binner: Binner) -> dict:
    assert binner.edges_ is not None
    return {
        "n_bins": binner.n_bins,
        "edges": [[float(e) for e in edges] for edges in binner.edges_],
    }


def _binner_from_dict(data: dict) -> Binner:
    binner = Binner(n_bins=data["n_bins"])
    binner.edges_ = [np.array(e, dtype=np.float64) for e in data["edges"]]
    return binner


# ---------------------------------------------------------------------------
# Per-model encoders
# ---------------------------------------------------------------------------
def model_to_dict(model) -> dict:
    """Serialize any :mod:`repro.ml` estimator to a JSON-safe dict.

    The payload carries ``format_version`` so future readers can refuse
    formats they do not understand instead of guessing.
    """
    payload = _encode_model(model)
    payload["format_version"] = MODEL_FORMAT_VERSION
    return payload


def _encode_model(model) -> dict:
    if isinstance(model, GradientBoostedTrees):
        if model.binner_ is None:
            raise ValueError("cannot serialize an unfitted model")
        return {
            "kind": "gbt",
            "params": {
                "n_estimators": model.n_estimators,
                "learning_rate": model.learning_rate,
                "n_bins": model.n_bins,
                "objective": model.objective,
                "multi_strategy": model.multi_strategy,
            },
            "base_score": [float(v) for v in model.base_score_],
            "n_features": model.n_features_,
            "n_outputs": model.n_outputs_,
            "binner": _binner_to_dict(model.binner_),
            "rounds": [
                [_tree_to_dict(t) for t in round_trees]
                for round_trees in model.trees_
            ],
        }
    if isinstance(model, RandomForestRegressor):
        if model.binner_ is None:
            raise ValueError("cannot serialize an unfitted model")
        return {
            "kind": "forest",
            "n_features": model.n_features_,
            "n_outputs": model.n_outputs_,
            "binner": _binner_to_dict(model.binner_),
            "trees": [_tree_to_dict(t) for t in model.trees_],
        }
    if isinstance(model, DecisionTreeRegressor):
        if model.binner_ is None or model.tree_ is None:
            raise ValueError("cannot serialize an unfitted model")
        return {
            "kind": "tree",
            "n_features": model.n_features_,
            "n_outputs": model.n_outputs_,
            "binner": _binner_to_dict(model.binner_),
            "tree": _tree_to_dict(model.tree_),
        }
    if isinstance(model, (LinearRegression, RidgeRegression)):
        if model.coef_ is None:
            raise ValueError("cannot serialize an unfitted model")
        return {
            "kind": "ridge" if isinstance(model, RidgeRegression) else "linear",
            "alpha": getattr(model, "alpha", None),
            "coef": np.asarray(model.coef_).tolist(),
            "intercept": np.asarray(model.intercept_).tolist(),
            "n_features": model.n_features_,
            "n_outputs": model.n_outputs_,
        }
    if isinstance(model, MeanPredictor):
        if model.mean_ is None:
            raise ValueError("cannot serialize an unfitted model")
        return {
            "kind": "mean",
            "mean": [float(v) for v in model.mean_],
            "n_features": model.n_features_,
            "n_outputs": model.n_outputs_,
        }
    raise TypeError(f"cannot serialize model of type {type(model).__name__}")


def model_from_dict(data: dict):
    """Restore an estimator serialized by :func:`model_to_dict`.

    Raises :class:`~repro.errors.SerializationError` on a format-version
    mismatch, an unknown ``kind``, or a payload with missing keys.
    """
    if not isinstance(data, dict):
        raise SerializationError(
            f"model payload must be an object, got {type(data).__name__}"
        )
    version = data.get("format_version", 1)
    if version not in (1, MODEL_FORMAT_VERSION):
        raise SerializationError(
            f"model format version {version!r} not supported "
            f"(this package reads 1..{MODEL_FORMAT_VERSION})"
        )
    try:
        return _decode_model(data)
    except KeyError as exc:
        missing = exc.args[0] if exc.args else "?"
        raise SerializationError(
            f"model payload (kind {data.get('kind')!r}) is missing "
            f"key {missing!r}"
        ) from None


def _decode_model(data: dict):
    kind = data.get("kind")
    if kind == "gbt":
        model = GradientBoostedTrees(
            n_estimators=data["params"]["n_estimators"],
            learning_rate=data["params"]["learning_rate"],
            n_bins=data["params"]["n_bins"],
            objective=data["params"]["objective"],
            multi_strategy=data["params"]["multi_strategy"],
        )
        model.base_score_ = np.array(data["base_score"], dtype=np.float64)
        model.n_features_ = data["n_features"]
        model.n_outputs_ = data["n_outputs"]
        model.binner_ = _binner_from_dict(data["binner"])
        model.trees_ = [
            [_tree_from_dict(t) for t in round_trees]
            for round_trees in data["rounds"]
        ]
        return model
    if kind == "forest":
        model = RandomForestRegressor(n_estimators=max(1, len(data["trees"])))
        model.n_features_ = data["n_features"]
        model.n_outputs_ = data["n_outputs"]
        model.binner_ = _binner_from_dict(data["binner"])
        model.trees_ = [_tree_from_dict(t) for t in data["trees"]]
        return model
    if kind == "tree":
        model = DecisionTreeRegressor()
        model.n_features_ = data["n_features"]
        model.n_outputs_ = data["n_outputs"]
        model.binner_ = _binner_from_dict(data["binner"])
        model.tree_ = _tree_from_dict(data["tree"])
        return model
    if kind in ("linear", "ridge"):
        model = (RidgeRegression(alpha=data["alpha"])
                 if kind == "ridge" else LinearRegression())
        model.coef_ = np.array(data["coef"], dtype=np.float64)
        model.intercept_ = np.array(data["intercept"], dtype=np.float64)
        model.n_features_ = data["n_features"]
        model.n_outputs_ = data["n_outputs"]
        return model
    if kind == "mean":
        model = MeanPredictor()
        model.mean_ = np.array(data["mean"], dtype=np.float64)
        model.n_features_ = data["n_features"]
        model.n_outputs_ = data["n_outputs"]
        return model
    raise SerializationError(f"unknown serialized model kind {kind!r}")


def save_model(model, path: str | Path) -> None:
    """Write an estimator as JSON."""
    Path(path).write_text(json.dumps(model_to_dict(model)))


def load_model(path: str | Path):
    """Read an estimator written by :func:`save_model`."""
    return model_from_dict(json.loads(Path(path).read_text()))
