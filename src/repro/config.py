"""Typed, frozen, JSON-round-trippable experiment configs.

Every ``repro`` subcommand is described by one frozen dataclass here.
A config plus the package's registries fully determines a run: the same
config replays the same experiment bit-identically (the CLI's
``--save-config`` / ``--config`` flags are thin wrappers over
:meth:`ExperimentConfig.save` / :meth:`ExperimentConfig.load`).

Three properties make configs the unit of provenance:

* **frozen** — a config cannot drift between the moment it is hashed
  and the moment it runs;
* **JSON round-trip** — ``to_dict``/``from_dict`` are exact inverses
  (tuples survive as tuples), and unknown or missing fields raise a
  typed :class:`~repro.errors.ConfigError` instead of being silently
  dropped;
* **content hash** — :meth:`ExperimentConfig.content_hash` is a SHA-256
  over the canonical JSON encoding (the same scheme
  :func:`repro.dataset.store.shard_cache_key` uses for dataset shards),
  covering the command, the config fields, and
  :data:`CONFIG_SCHEMA_VERSION` — so artifact stores can content-address
  whole runs exactly like the shard cache content-addresses shards.

Name-valued fields (model, strategies, fault profile, app, machine) are
validated *structurally* here (non-empty strings); existence is checked
at lookup time through :mod:`repro.registry`-backed registries, which
raise typed did-you-mean errors.  That split keeps this module at the
bottom of the layer graph: it may import nothing from :mod:`repro`
except :mod:`repro.errors` and :mod:`repro.registry` (enforced by
``tools/check_layering.py`` and ``tests/test_layering.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import ClassVar

from repro.errors import ConfigError
from repro.ioutils import atomic_write_json
from repro.registry import Registry

__all__ = [
    "CONFIG_SCHEMA_VERSION",
    "SCALES",
    "canonical_json",
    "content_digest",
    "set_machine_digest_resolver",
    "BaseConfig",
    "DatasetConfig",
    "ReportConfig",
    "TrainConfig",
    "EvaluateConfig",
    "ImportanceConfig",
    "ProfileConfig",
    "PredictConfig",
    "WhatifConfig",
    "CalibrateConfig",
    "ScheduleConfig",
    "ServeConfig",
    "PerfConfig",
    "ExperimentConfig",
    "COMMAND_CONFIGS",
]

#: Bumped whenever a config dataclass changes incompatibly; stored in
#: every saved config and every run manifest, checked on load.
CONFIG_SCHEMA_VERSION = 1

#: The run scales the profiler understands (``--scale`` choices).
SCALES: tuple[str, ...] = ("1core", "1node", "2node")


def canonical_json(value) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift).

    The one true encoding used for every content hash in the package —
    dataset shard keys (:func:`repro.dataset.store.shard_cache_key`),
    config hashes, and artifact-manifest file checksums all agree on it.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def content_digest(value) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of *value*."""
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


#: Machine-name -> spec-digest resolver, installed by
#: :mod:`repro.arch.machines` at import time.  Dependency inversion:
#: this module sits *below* the arch layer (it may import only errors/
#: registry/ioutils), so it cannot look machine specs up itself — the
#: arch layer pushes the resolver down instead.  When installed,
#: :meth:`ExperimentConfig.content_hash` folds the full-spec digest of
#: every machine the config *names* into the hash material, so two runs
#: against same-named but differently-specced machines can never
#: collide to one config hash.
_MACHINE_DIGEST_RESOLVER = None

#: Config fields whose string value names a registered machine.
_MACHINE_NAME_FIELDS = ("machine", "source")


def set_machine_digest_resolver(resolver) -> None:
    """Install the machine-name -> digest function (or None to clear).

    Called by :mod:`repro.arch.machines` when it registers the paper's
    machines; test fixtures may swap it temporarily.
    """
    global _MACHINE_DIGEST_RESOLVER
    _MACHINE_DIGEST_RESOLVER = resolver


def _named_machine_digests(config) -> dict:
    """Digest of every registered machine *config* names, by name.

    Unknown names contribute nothing — pinning them is impossible and
    execution raises the typed lookup error with suggestions anyway.
    """
    resolver = _MACHINE_DIGEST_RESOLVER
    if resolver is None:
        return {}
    digests = {}
    for f in fields(config):
        if f.name not in _MACHINE_NAME_FIELDS:
            continue
        name = getattr(config, f.name)
        if not isinstance(name, str) or not name.strip():
            continue
        try:
            digests[name] = resolver(name)
        except KeyError:
            continue
    return digests


# ---------------------------------------------------------------------------
# Validation helpers (structural only — no registry lookups here)
# ---------------------------------------------------------------------------
def _require_positive(cfg, *names: str) -> None:
    for name in names:
        value = getattr(cfg, name)
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ConfigError(
                f"{type(cfg).__name__}.{name} must be a positive integer, "
                f"got {value!r}"
            )


def _require_non_negative(cfg, *names: str) -> None:
    for name in names:
        value = getattr(cfg, name)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ConfigError(
                f"{type(cfg).__name__}.{name} must be a non-negative "
                f"integer, got {value!r}"
            )


def _require_name(cfg, *names: str) -> None:
    for name in names:
        value = getattr(cfg, name)
        if not isinstance(value, str) or not value.strip():
            raise ConfigError(
                f"{type(cfg).__name__}.{name} must be a non-empty string, "
                f"got {value!r}"
            )


def _freeze_tuple(cfg, name: str) -> None:
    """Coerce a list-valued field to the tuple the dataclass declares,
    so directly-constructed and JSON-restored configs compare equal."""
    value = getattr(cfg, name)
    if isinstance(value, list):
        object.__setattr__(cfg, name, tuple(value))


def _require_scale(cfg) -> None:
    if cfg.scale not in SCALES:
        raise ConfigError(
            f"{type(cfg).__name__}.scale must be one of {SCALES}, "
            f"got {cfg.scale!r}"
        )


@dataclass(frozen=True)
class BaseConfig:
    """Shared JSON plumbing for all per-command configs."""

    #: CLI command this config drives (subclasses override).
    command: ClassVar[str] = ""

    def to_dict(self) -> dict:
        """Plain-JSON-types dict of this config's fields (exact inverse
        of :meth:`from_dict`)."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "BaseConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys and missing required fields raise
        :class:`~repro.errors.ConfigError`; lists are restored to the
        tuples the dataclasses declare.
        """
        if not isinstance(data, dict):
            raise ConfigError(
                f"{cls.__name__} payload must be an object, "
                f"got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown {cls.__name__} field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        required = {
            f.name for f in fields(cls)
            if f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        }
        missing = sorted(required - set(data))
        if missing:
            raise ConfigError(
                f"missing {cls.__name__} field(s): {', '.join(missing)}"
            )
        coerced = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in data.items()
        }
        return cls(**coerced)


# ---------------------------------------------------------------------------
# Per-command configs (field names match the argparse dests exactly)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DatasetConfig(BaseConfig):
    """``repro generate`` / ``repro dataset``."""

    command: ClassVar[str] = "generate"

    inputs_per_app: int = 12
    seed: int = 0
    output: str = "mphpc.csv"
    jobs: int = 1
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        _require_positive(self, "inputs_per_app")
        _require_non_negative(self, "seed", "jobs")


@dataclass(frozen=True)
class ReportConfig(BaseConfig):
    """``repro report``."""

    command: ClassVar[str] = "report"

    inputs_per_app: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        _require_positive(self, "inputs_per_app")
        _require_non_negative(self, "seed")


@dataclass(frozen=True)
class TrainConfig(BaseConfig):
    """``repro train``."""

    command: ClassVar[str] = "train"

    model: str = "xgboost"
    inputs_per_app: int = 12
    seed: int = 0
    split_seed: int = 42
    output: str = "predictor.pkl"
    zeroshot: bool = False
    exclude_machines: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _freeze_tuple(self, "exclude_machines")
        _require_name(self, "model")
        _require_positive(self, "inputs_per_app")
        _require_non_negative(self, "seed", "split_seed")
        if not isinstance(self.zeroshot, bool):
            raise ConfigError(
                f"TrainConfig.zeroshot must be a boolean, "
                f"got {self.zeroshot!r}"
            )
        if not all(
            isinstance(m, str) and m.strip() for m in self.exclude_machines
        ):
            raise ConfigError(
                "TrainConfig.exclude_machines must be a tuple of machine "
                f"names, got {self.exclude_machines!r}"
            )
        if self.exclude_machines and not self.zeroshot:
            raise ConfigError(
                "TrainConfig.exclude_machines only applies to the "
                "zero-shot head; pass zeroshot=True (--zeroshot)"
            )


@dataclass(frozen=True)
class EvaluateConfig(BaseConfig):
    """``repro evaluate`` (the Fig. 2 four-model comparison)."""

    command: ClassVar[str] = "evaluate"

    inputs_per_app: int = 8
    seed: int = 0
    cv: bool = False
    jobs: int = 1
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        _require_positive(self, "inputs_per_app")
        _require_non_negative(self, "seed", "jobs")


@dataclass(frozen=True)
class ImportanceConfig(BaseConfig):
    """``repro importance`` (the Fig. 6 feature-importance report)."""

    command: ClassVar[str] = "importance"

    inputs_per_app: int = 8
    seed: int = 0
    top: int = 21

    def __post_init__(self) -> None:
        _require_positive(self, "inputs_per_app", "top")
        _require_non_negative(self, "seed")


@dataclass(frozen=True)
class ProfileConfig(BaseConfig):
    """``repro profile`` (one simulated profiled run)."""

    command: ClassVar[str] = "profile"

    app: str = ""
    machine: str = ""
    scale: str = "1node"
    seed: int = 0
    save: str | None = None

    def __post_init__(self) -> None:
        _require_name(self, "app", "machine")
        _require_scale(self)
        _require_non_negative(self, "seed")


@dataclass(frozen=True)
class PredictConfig(BaseConfig):
    """``repro predict`` (profile a run, predict its RPV)."""

    command: ClassVar[str] = "predict"

    predictor: str = ""
    app: str = ""
    machine: str = "Quartz"
    scale: str = "1node"
    seed: int = 0

    def __post_init__(self) -> None:
        _require_name(self, "predictor", "app", "machine")
        _require_scale(self)
        _require_non_negative(self, "seed")


@dataclass(frozen=True)
class WhatifConfig(BaseConfig):
    """``repro whatif`` (the Section VIII-B porting shortlist)."""

    command: ClassVar[str] = "whatif"

    predictor: str = ""
    apps: tuple[str, ...] = ()
    source: str = "Quartz"
    scale: str = "1node"
    seed: int = 0

    def __post_init__(self) -> None:
        _freeze_tuple(self, "apps")
        _require_name(self, "predictor", "source")
        _require_scale(self)
        _require_non_negative(self, "seed")
        if not self.apps or not all(
            isinstance(a, str) and a.strip() for a in self.apps
        ):
            raise ConfigError(
                "WhatifConfig.apps must be a non-empty tuple of app names"
            )


@dataclass(frozen=True)
class CalibrateConfig(BaseConfig):
    """``repro calibrate`` (noise floor / orderability diagnostics)."""

    command: ClassVar[str] = "calibrate"

    inputs_per_app: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        _require_positive(self, "inputs_per_app")
        _require_non_negative(self, "seed")


@dataclass(frozen=True)
class ScheduleConfig(BaseConfig):
    """``repro schedule`` (the Figs. 7-8 scheduling experiment)."""

    command: ClassVar[str] = "schedule"

    jobs: int = 5000
    inputs_per_app: int = 8
    seed: int = 0
    strategies: tuple[str, ...] = ("random", "round_robin", "user_rr",
                                  "model")
    swf_output: str | None = None
    fault_profile: str = "none"
    checkpoint: bool = False
    max_attempts: int | None = None
    with_uncertainty: bool = False

    def __post_init__(self) -> None:
        _freeze_tuple(self, "strategies")
        if not isinstance(self.with_uncertainty, bool):
            raise ConfigError(
                f"ScheduleConfig.with_uncertainty must be a boolean, "
                f"got {self.with_uncertainty!r}"
            )
        _require_positive(self, "jobs", "inputs_per_app")
        _require_non_negative(self, "seed")
        _require_name(self, "fault_profile")
        if not self.strategies or not all(
            isinstance(s, str) and s.strip() for s in self.strategies
        ):
            raise ConfigError(
                "ScheduleConfig.strategies must be a non-empty tuple of "
                "strategy names"
            )
        if self.max_attempts is not None and (
            not isinstance(self.max_attempts, int)
            or isinstance(self.max_attempts, bool)
            or self.max_attempts < 1
        ):
            raise ConfigError(
                "ScheduleConfig.max_attempts must be None or a positive "
                f"integer, got {self.max_attempts!r}"
            )


@dataclass(frozen=True)
class ServeConfig(BaseConfig):
    """``repro serve`` (the online prediction + placement service)."""

    command: ClassVar[str] = "serve"

    registry: str = ""
    model_hash: str | None = None
    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 32
    batch_deadline_ms: float = 5.0
    soft_inflight: int = 64
    max_inflight: int = 256
    strategy: str = "model"
    watch_interval_ms: float = 200.0
    selftest_requests: int = 0
    selftest_rate: float = 200.0
    seed: int = 0
    #: SLO availability target in (0, 1); 0 disables SLO-driven
    #: admission (the watermark controller runs unchanged).
    slo_target: float = 0.0
    #: Latency threshold (ms) above which a request burns SLO budget.
    slo_threshold_ms: float = 50.0
    #: Burn-rate multiples gating degraded service / shedding.
    slo_degrade_burn: float = 1.0
    slo_shed_burn: float = 4.0
    #: Flight-recorder ring capacity; 0 disables recording.
    flight_events: int = 512

    def __post_init__(self) -> None:
        _require_name(self, "registry", "host", "strategy")
        _require_positive(self, "max_batch", "soft_inflight",
                          "max_inflight")
        _require_non_negative(self, "port", "selftest_requests", "seed",
                              "flight_events")
        if not isinstance(self.slo_target, (int, float)) or isinstance(
            self.slo_target, bool
        ) or not 0.0 <= self.slo_target < 1.0:
            raise ConfigError(
                f"ServeConfig.slo_target must be in [0, 1) (0 = off), "
                f"got {self.slo_target!r}"
            )
        for name in ("slo_threshold_ms", "slo_degrade_burn",
                     "slo_shed_burn"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(
                value, bool
            ) or not value > 0:
                raise ConfigError(
                    f"ServeConfig.{name} must be a positive number, "
                    f"got {value!r}"
                )
        if self.slo_shed_burn < self.slo_degrade_burn:
            raise ConfigError(
                f"ServeConfig.slo_shed_burn ({self.slo_shed_burn}) must "
                f"be >= slo_degrade_burn ({self.slo_degrade_burn})"
            )
        if self.max_inflight < self.soft_inflight:
            raise ConfigError(
                f"ServeConfig.max_inflight ({self.max_inflight}) must be "
                f">= soft_inflight ({self.soft_inflight})"
            )
        for name in ("batch_deadline_ms", "watch_interval_ms",
                     "selftest_rate"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(
                value, bool
            ) or not value >= 0:
                raise ConfigError(
                    f"ServeConfig.{name} must be a non-negative number, "
                    f"got {value!r}"
                )
        if self.model_hash is not None and (
            not isinstance(self.model_hash, str)
            or not self.model_hash.strip()
        ):
            raise ConfigError(
                "ServeConfig.model_hash must be None or a non-empty "
                f"string, got {self.model_hash!r}"
            )


@dataclass(frozen=True)
class PerfConfig(BaseConfig):
    """``repro perf`` (deterministic self-profiling of the hot paths)."""

    command: ClassVar[str] = "perf"

    workload: str = "sched"
    jobs: int = 1500
    rows: int = 5000
    seed: int = 0
    top: int = 20

    def __post_init__(self) -> None:
        if self.workload not in ("sched", "predict"):
            raise ConfigError(
                f"PerfConfig.workload must be 'sched' or 'predict', "
                f"got {self.workload!r}"
            )
        _require_positive(self, "jobs", "rows", "top")
        _require_non_negative(self, "seed")


#: Command name -> config class.  Aliases mirror the CLI's (``dataset``
#: is an alias of ``generate``); lookups of unknown commands raise a
#: typed UnknownNameError.
COMMAND_CONFIGS: Registry[type[BaseConfig]] = Registry("command")
COMMAND_CONFIGS.register("generate", DatasetConfig, aliases=("dataset",))
COMMAND_CONFIGS.register("report", ReportConfig)
COMMAND_CONFIGS.register("train", TrainConfig)
COMMAND_CONFIGS.register("evaluate", EvaluateConfig)
COMMAND_CONFIGS.register("importance", ImportanceConfig)
COMMAND_CONFIGS.register("profile", ProfileConfig)
COMMAND_CONFIGS.register("predict", PredictConfig)
COMMAND_CONFIGS.register("whatif", WhatifConfig)
COMMAND_CONFIGS.register("calibrate", CalibrateConfig)
COMMAND_CONFIGS.register("schedule", ScheduleConfig)
COMMAND_CONFIGS.register("serve", ServeConfig)
COMMAND_CONFIGS.register("perf", PerfConfig)


# ---------------------------------------------------------------------------
# The persisted envelope
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentConfig:
    """One replayable experiment: a command plus its typed config.

    This is the JSON document ``--save-config`` writes and ``--config``
    reads; :meth:`content_hash` is the run's identity in artifact
    manifests.
    """

    command: str
    config: BaseConfig

    def __post_init__(self) -> None:
        expected = COMMAND_CONFIGS[self.command]
        if type(self.config) is not expected:
            raise ConfigError(
                f"command {self.command!r} takes a {expected.__name__}, "
                f"got {type(self.config).__name__}"
            )
        # Normalize aliases ("dataset" -> "generate") so equal
        # experiments hash equal.
        object.__setattr__(
            self, "command", COMMAND_CONFIGS.canonical(self.command)
        )

    # -- JSON round-trip ------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "config_schema_version": CONFIG_SCHEMA_VERSION,
            "command": self.command,
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        if not isinstance(data, dict):
            raise ConfigError(
                f"experiment config must be an object, "
                f"got {type(data).__name__}"
            )
        version = data.get("config_schema_version")
        if version != CONFIG_SCHEMA_VERSION:
            raise ConfigError(
                f"config schema version mismatch: file has {version!r}, "
                f"this package reads {CONFIG_SCHEMA_VERSION}"
            )
        extra = sorted(
            set(data) - {"config_schema_version", "command", "config"}
        )
        if extra:
            raise ConfigError(
                f"unknown experiment config key(s): {', '.join(extra)}"
            )
        command = data.get("command")
        if not isinstance(command, str):
            raise ConfigError("experiment config lacks a 'command' string")
        config_cls = COMMAND_CONFIGS[command]
        return cls(command=command,
                   config=config_cls.from_dict(data.get("config", {})))

    # -- persistence ----------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the config as pretty-printed JSON, atomically
        (hash-stable: the content hash is computed over the canonical
        encoding, not the pretty one)."""
        atomic_write_json(Path(path), self.to_dict())

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentConfig":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot read config {path}: {exc}") from exc
        try:
            return cls.from_dict(data)
        except ConfigError as exc:
            raise ConfigError(f"{path}: {exc}") from None

    # -- identity -------------------------------------------------------
    def content_hash(self) -> str:
        """SHA-256 content address of this experiment (same scheme as
        the dataset shard cache).

        When the config *names* registered machines (``machine`` /
        ``source`` fields), their full-spec digests are folded into the
        hash material: a ``profile --machine Quartz`` run against a
        re-specced Quartz gets a different identity, even though the
        config document itself is byte-identical.  Only named machines
        are pinned — not the whole registry — so registering a *new*
        machine never invalidates existing run identities.
        """
        material = self.to_dict()
        digests = _named_machine_digests(self.config)
        if digests:
            material["machine_digests"] = digests
        return content_digest(material)

    @property
    def seed(self) -> int:
        """The experiment's root seed (0 for configs without one)."""
        return int(getattr(self.config, "seed", 0))
