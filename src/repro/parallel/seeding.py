"""Root-seed + task-identity RNG substream derivation.

Every stochastic quantity in the pipeline (input sizes, instruction-mix
jitter, runtime and counter noise) is drawn from a generator seeded by
``SeedSequence([root_seed, hash(identity_0), hash(identity_1), ...])``.
Because the substream depends only on the root seed and the task's own
identity — never on execution order, process id, or any shared mutable
generator — a worker process can regenerate exactly the values the
sequential code would have produced.  This is what makes the parallel
executor's output bit-identical to a sequential run.

String identity parts are folded in through :func:`stable_hash` (FNV-1a,
process-independent; Python's builtin ``hash`` is salted per process and
must never leak into seeding).
"""

from __future__ import annotations

import numpy as np

__all__ = ["stable_hash", "substream", "derive_seed"]


def stable_hash(text: str) -> int:
    """Deterministic FNV-1a 32-bit hash (process-independent)."""
    h = 2166136261
    for ch in text.encode():
        h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
    return h


def _entropy(root_seed: int, identity: tuple[str | int, ...]) -> list[int]:
    return [int(root_seed)] + [
        stable_hash(part) if isinstance(part, str) else int(part)
        for part in identity
    ]


def substream(root_seed: int, *identity: str | int) -> np.random.Generator:
    """An independent generator for one (root seed, task identity) pair.

    Identity parts may be strings (hashed stably) or integers (used
    as-is).  Calls with the same arguments always return generators that
    produce the same stream, in any process, in any order.
    """
    return np.random.default_rng(
        np.random.SeedSequence(_entropy(root_seed, identity))
    )


def derive_seed(root_seed: int, *identity: str | int) -> int:
    """A scalar seed derived from a root seed and a task identity.

    For APIs that take an integer seed rather than a generator.  The
    derivation goes through ``SeedSequence`` so nearby root seeds or
    identities never yield correlated outputs.
    """
    state = np.random.SeedSequence(
        _entropy(root_seed, identity)
    ).generate_state(1, dtype=np.uint64)
    return int(state[0])
