"""Ordered work-sharding executor.

:func:`run_tasks` maps a picklable function over a list of task
descriptions, either inline (``jobs=1`` — zero overhead, no pool) or on
a process pool, and always returns results in task-submission order.
Combined with :mod:`repro.parallel.seeding` this makes parallelism a
pure wall-time knob: the caller shards the work, each shard derives its
own RNG substream from the root seed, and reassembly order is fixed by
the task list, not by completion order.

The worker function must be defined at module level (process pools
pickle it by reference) and tasks should be small plain-data objects;
workers that need heavyweight inputs should rebuild them from the task
description rather than shipping them through the pickle channel.

Telemetry: when metrics are enabled in the parent, each pool task runs
under :func:`_traced_call`, which resets the worker's (possibly
fork-inherited) registry, runs the task, and ships a per-task metric
snapshot back through the ordered result channel; the parent folds the
snapshots in task order, so for deterministic workloads the merged
numbers equal a sequential run's exactly.  With telemetry off the pool
path is byte-for-byte the old one.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro import telemetry

__all__ = ["resolve_jobs", "run_tasks"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/0/negative mean "all cores"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _traced_call(packed):
    """Pool wrapper: run one task with a clean worker-local registry and
    return ``(result, metric_snapshot)``.

    The reset is what makes fork-started workers correct: a forked child
    inherits the parent's already-populated registry, and snapshotting
    without a reset would re-ship (and double-count) everything the
    parent had recorded before the pool spawned.
    """
    fn, task = packed
    telemetry.configure("metrics")
    telemetry.reset()
    result = fn(task)
    return result, telemetry.snapshot()


def run_tasks(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    jobs: int | None = 1,
    chunksize: int | None = None,
) -> list[R]:
    """Apply *fn* to every task, returning results in task order.

    Parameters
    ----------
    fn:
        Module-level picklable callable.
    tasks:
        Task descriptions (picklable).
    jobs:
        Worker processes; ``1`` runs inline with no pool, ``None``/``0``
        use every core.
    chunksize:
        Tasks shipped per pool round-trip (default: tasks split into
        roughly four chunks per worker).

    Any worker exception propagates to the caller unchanged (the pool is
    torn down first), matching inline behaviour.
    """
    task_list: Sequence[T] = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]
    jobs = min(jobs, len(task_list))
    if chunksize is None:
        chunksize = max(1, len(task_list) // (jobs * 4))
    if telemetry.metrics_enabled():
        packed = [(fn, task) for task in task_list]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            traced = list(pool.map(_traced_call, packed,
                                   chunksize=chunksize))
        for _, snapshot in traced:
            telemetry.merge_snapshot(snapshot)
        return [result for result, _ in traced]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, task_list, chunksize=chunksize))
