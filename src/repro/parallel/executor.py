"""Ordered work-sharding executor.

:func:`run_tasks` maps a picklable function over a list of task
descriptions, either inline (``jobs=1`` — zero overhead, no pool) or on
a process pool, and always returns results in task-submission order.
Combined with :mod:`repro.parallel.seeding` this makes parallelism a
pure wall-time knob: the caller shards the work, each shard derives its
own RNG substream from the root seed, and reassembly order is fixed by
the task list, not by completion order.

The worker function must be defined at module level (process pools
pickle it by reference) and tasks should be small plain-data objects;
workers that need heavyweight inputs should rebuild them from the task
description rather than shipping them through the pickle channel.

Failure semantics: an exception *raised* by the worker function
propagates to the caller unchanged (the pool is torn down first),
matching inline behaviour.  A worker process that *dies* without
raising — OOM-killed, segfaulted, ``os._exit`` — used to surface as an
opaque ``BrokenProcessPool`` naming no task; it now raises a typed
:class:`~repro.errors.ParallelExecutionError` carrying the contiguous
index range of the chunk whose worker died.

Telemetry: when metrics are enabled in the parent, each pooled task
runs under a traced wrapper that resets the worker's (possibly
fork-inherited) registry, runs the task, and ships a per-task metric
snapshot back through the ordered result channel; the parent folds the
snapshots in task order, so for deterministic workloads the merged
numbers equal a sequential run's exactly.  In trace mode the worker's
finished spans ship back too and are grafted under the parent's
current span with remapped ids, so a ``jobs=N`` run exports the same
span tree (modulo timestamps) as ``jobs=1``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from repro import telemetry
from repro.errors import ParallelExecutionError

__all__ = ["resolve_jobs", "run_tasks", "ParallelExecutionError"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/0/negative mean "all cores"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _traced_call(fn, task, ctx):
    """Run one task with a clean worker-local registry and return
    ``(result, metric_snapshot, spans_or_None)``.

    The reset is what makes fork-started workers correct: a forked child
    inherits the parent's already-populated registry, and snapshotting
    without a reset would re-ship (and double-count) everything the
    parent had recorded before the pool spawned.

    In trace mode the task runs under the parent's ambient trace
    (*ctx* carries the parent-side ``trace_id``) and the worker's
    finished spans ship back with the snapshot; the parent grafts them
    under its own span tree via ``telemetry.adopt_spans`` — ids are
    remapped there, so worker tracers all counting from 1 never
    collide.
    """
    mode = ctx.get("mode", "metrics")
    telemetry.configure(mode)
    telemetry.reset()
    if mode == "trace":
        with telemetry.trace_context(ctx.get("trace_id")):
            result = fn(task)
        return result, telemetry.snapshot(), telemetry.spans()
    result = fn(task)
    return result, telemetry.snapshot(), None


def _run_chunk(packed):
    """Pool entry point: run one contiguous chunk of tasks.

    ``packed`` is ``(fn, tasks, ctx)`` where ``ctx`` is ``None`` for
    untraced runs; returns the chunk's results in task order
    (``(result, snapshot, spans)`` triples when traced).
    """
    fn, tasks, ctx = packed
    if ctx is not None:
        return [_traced_call(fn, task, ctx) for task in tasks]
    return [fn(task) for task in tasks]


def run_tasks(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    jobs: int | None = 1,
    chunksize: int | None = None,
) -> list[R]:
    """Apply *fn* to every task, returning results in task order.

    Parameters
    ----------
    fn:
        Module-level picklable callable.
    tasks:
        Task descriptions (picklable).
    jobs:
        Worker processes; ``1`` runs inline with no pool, ``None``/``0``
        use every core.
    chunksize:
        Tasks shipped per pool round-trip (default: tasks split into
        roughly four chunks per worker).

    Raises
    ------
    ParallelExecutionError
        When a worker process dies without raising; the error names the
        index range of the first failed chunk.  Exceptions raised *by*
        the worker function propagate unchanged.
    """
    task_list: Sequence[T] = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]
    jobs = min(jobs, len(task_list))
    if chunksize is None:
        chunksize = max(1, len(task_list) // (jobs * 4))
    ctx = None
    trace_id = parent_span = None
    if telemetry.metrics_enabled():
        trace_id, parent_span = telemetry.current_trace()
        ctx = {"mode": telemetry.mode(), "trace_id": trace_id}
    chunks = [task_list[i:i + chunksize]
              for i in range(0, len(task_list), chunksize)]
    flat: list = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(_run_chunk, (fn, chunk, ctx))
                   for chunk in chunks]
        start = 0
        for chunk, future in zip(chunks, futures):
            try:
                flat.extend(future.result())
            except BrokenProcessPool as exc:
                raise ParallelExecutionError(
                    f"worker process died while running tasks "
                    f"[{start}, {start + len(chunk)}) of {len(task_list)} "
                    f"(killed/OOM/segfault — no task exception exists)",
                    task_start=start,
                    task_stop=start + len(chunk),
                ) from exc
            start += len(chunk)
    if ctx is not None:
        # Fold worker telemetry back in task order: merged metrics match
        # a sequential run exactly, and adopted span trees attach under
        # the span that was open at the call site — so the jobs=2 tree
        # is structurally identical to jobs=1 (pinned by test).
        for _, snapshot, spans in flat:
            telemetry.merge_snapshot(snapshot)
            if spans:
                telemetry.adopt_spans(spans, parent_id=parent_span,
                                      trace_id=trace_id)
        return [result for result, _, _ in flat]
    return flat
