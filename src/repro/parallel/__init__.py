"""Deterministic parallel execution substrate.

The MP-HPC pipeline is embarrassingly parallel at the shard level (one
shard = every input of one application on one system at one scale) but
the paper's reproducibility contract demands that *how* the work is
scheduled never changes *what* is produced.  This package supplies the
two halves of that contract:

* :mod:`repro.parallel.seeding` — per-task RNG substreams derived from a
  root seed plus the task's identity, so a worker process needs nothing
  but its task description to regenerate exactly the stream the
  sequential code would have used.
* :mod:`repro.parallel.executor` — an ordered work-sharding executor
  (process pool) whose results are reassembled in task-submission order,
  making ``jobs=N`` a pure wall-time knob.

Together they make ``generate_dataset(seed=S, jobs=1)`` and
``generate_dataset(seed=S, jobs=8)`` byte-identical by construction —
an invariant pinned by ``tests/test_parallel_determinism.py``.
"""

from repro.parallel.executor import (
    ParallelExecutionError,
    resolve_jobs,
    run_tasks,
)
from repro.parallel.seeding import derive_seed, stable_hash, substream

__all__ = [
    "run_tasks",
    "resolve_jobs",
    "ParallelExecutionError",
    "substream",
    "derive_seed",
    "stable_hash",
]
