"""Provenance-stamped run-directory artifact store.

Before this module, every ``repro`` run scattered ad-hoc output files —
a CSV here, a pickle there, metrics on stdout only — with no record of
what produced them.  A :class:`RunDir` collects everything one run emits
(dataset shards, :mod:`repro.ml.serialization` model files, metrics
JSON, figures, SWF traces) under one directory and stamps it with a
``manifest.json`` recording:

* the full :class:`~repro.config.ExperimentConfig` and its SHA-256
  content hash (the run's identity);
* the root seed;
* every schema/format version in play
  (:data:`~repro.config.CONFIG_SCHEMA_VERSION`,
  :data:`~repro.dataset.schema.DATASET_SCHEMA_VERSION`,
  :data:`~repro.ml.serialization.MODEL_FORMAT_VERSION`, and this
  manifest's own :data:`MANIFEST_FORMAT_VERSION`);
* the package version and wall-clock duration;
* a checksummed file inventory (SHA-256 + size per artifact).

:func:`load_run` reads a run back; :func:`verify_run` re-hashes every
file against the inventory, so bit-rot or hand-editing is detected
instead of silently trusted.  Typical shape::

    run = RunDir.create("runs", experiment)
    run.save_metrics({"xgboost": {"mae": 0.031}})
    run.attach(csv_path)           # adopt a file written elsewhere
    run.finalize()                 # writes manifest.json

    loaded = load_run(run.path)
    loaded.config.content_hash() == loaded.manifest["config_hash"]
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

from repro import __version__
from repro.config import CONFIG_SCHEMA_VERSION, ExperimentConfig
from repro.errors import ArtifactError
from repro.ioutils import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)

__all__ = [
    "MANIFEST_FORMAT_VERSION",
    "MANIFEST_NAME",
    "RunDir",
    "LoadedRun",
    "load_run",
    "verify_run",
    "list_runs",
    "find_run",
]

#: Bumped whenever the manifest layout changes incompatibly.
MANIFEST_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _format_versions() -> dict[str, int]:
    # Imported lazily: artifacts sits below dataset/ml in the layer
    # graph only for typing purposes; at runtime it needs their version
    # constants, and importing them at module scope would pull the whole
    # numeric stack into `import repro.artifacts`.
    from repro.dataset.schema import DATASET_SCHEMA_VERSION
    from repro.ml.serialization import MODEL_FORMAT_VERSION

    return {
        "manifest_format_version": MANIFEST_FORMAT_VERSION,
        "config_schema_version": CONFIG_SCHEMA_VERSION,
        "dataset_schema_version": DATASET_SCHEMA_VERSION,
        "model_format_version": MODEL_FORMAT_VERSION,
    }


class RunDir:
    """One run's output directory, building toward a sealed manifest."""

    def __init__(self, path: Path, experiment: ExperimentConfig):
        self.path = Path(path)
        self.experiment = experiment
        self._started = time.monotonic()
        self._finalized = False

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root: str | Path,
               experiment: ExperimentConfig) -> "RunDir":
        """Create ``<root>/<command>-<confighash12>`` and return it.

        The directory name is content-derived, so re-running the same
        config lands in the same place (and overwrites its artifacts
        with bit-identical ones — that is the point).
        """
        digest = experiment.content_hash()
        path = Path(root) / f"{experiment.command}-{digest[:12]}"
        path.mkdir(parents=True, exist_ok=True)
        return cls(path, experiment)

    # ------------------------------------------------------------------
    def file(self, name: str) -> Path:
        """Path for an artifact inside the run directory."""
        if Path(name).is_absolute() or ".." in Path(name).parts:
            raise ArtifactError(f"artifact name {name!r} escapes the run dir")
        return self.path / name

    def save_json(self, name: str, payload) -> Path:
        """Write *payload* as deterministic JSON inside the run
        (atomically — a crash mid-write never leaves a torn file)."""
        path = self.file(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, payload)
        return path

    def save_text(self, name: str, text: str) -> Path:
        """Write a plain-text artifact atomically (e.g. ``metrics.prom``,
        the Prometheus exposition the serve self-test captures)."""
        path = self.file(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, text)
        return path

    def save_metrics(self, metrics: dict, name: str = "metrics.json") -> Path:
        """Write the run's headline numbers (replay compares these)."""
        return self.save_json(name, metrics)

    def save_model(self, model, name: str = "model.json") -> Path:
        """Write an estimator in the portable ml-serialization format."""
        from repro.ml.serialization import save_model

        path = self.file(name)
        save_model(model, path)
        return path

    def attach(self, path: str | Path) -> Path:
        """Adopt a file written elsewhere: copy it into the run dir."""
        source = Path(path)
        if not source.is_file():
            raise ArtifactError(f"cannot attach {source}: not a file")
        target = self.file(source.name)
        if source.resolve() != target.resolve():
            atomic_write_bytes(target, source.read_bytes())
        return target

    # ------------------------------------------------------------------
    def finalize(self) -> Path:
        """Checksum every artifact and write ``manifest.json``."""
        files = {}
        for entry in sorted(self.path.rglob("*")):
            if not entry.is_file() or entry.name == MANIFEST_NAME:
                continue
            rel = entry.relative_to(self.path).as_posix()
            files[rel] = {
                "sha256": _file_sha256(entry),
                "bytes": entry.stat().st_size,
            }
        manifest = {
            **_format_versions(),
            "command": self.experiment.command,
            "config": self.experiment.to_dict(),
            "config_hash": self.experiment.content_hash(),
            "seed": self.experiment.seed,
            "repro_version": __version__,
            "wall_time_seconds": round(time.monotonic() - self._started, 3),
            "files": files,
        }
        path = self.path / MANIFEST_NAME
        # Atomic: the manifest is the seal of the whole run dir, and a
        # torn one would make every artifact unreadable (load_run
        # refuses corrupt JSON); either the run is sealed or it is not.
        atomic_write_json(path, manifest)
        self._finalized = True
        return path


class LoadedRun:
    """A finalized run read back from disk."""

    def __init__(self, path: Path, manifest: dict):
        self.path = Path(path)
        self.manifest = manifest
        self.config = ExperimentConfig.from_dict(manifest["config"])

    @property
    def command(self) -> str:
        return self.manifest["command"]

    @property
    def config_hash(self) -> str:
        return self.manifest["config_hash"]

    @property
    def seed(self) -> int:
        return int(self.manifest["seed"])

    def files(self) -> tuple[str, ...]:
        return tuple(sorted(self.manifest["files"]))

    def read_json(self, name: str):
        """Parse one JSON artifact from the run."""
        return json.loads((self.path / name).read_text())

    def metrics(self, name: str = "metrics.json"):
        return self.read_json(name)

    def model(self, name: str = "model.json"):
        """Restore an estimator saved with :meth:`RunDir.save_model`."""
        from repro.ml.serialization import load_model

        return load_model(self.path / name)


def load_run(path: str | Path) -> LoadedRun:
    """Read a run directory's manifest; typed errors on any defect."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ArtifactError(f"{path} is not a run directory "
                            f"(no {MANIFEST_NAME})")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"corrupt manifest {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ArtifactError(f"corrupt manifest {manifest_path}: not an object")
    version = manifest.get("manifest_format_version")
    if version != MANIFEST_FORMAT_VERSION:
        raise ArtifactError(
            f"{manifest_path}: manifest format version {version!r} "
            f"(this package reads {MANIFEST_FORMAT_VERSION})"
        )
    missing = [key for key in ("command", "config", "config_hash", "seed",
                               "files") if key not in manifest]
    if missing:
        raise ArtifactError(
            f"{manifest_path}: missing manifest key(s): {', '.join(missing)}"
        )
    return LoadedRun(path, manifest)


def list_runs(root: str | Path, command: str | None = None) -> list[LoadedRun]:
    """All finalized runs directly under *root*, sorted by directory name.

    Unfinalized directories (no manifest yet — a run in progress or a
    torn write) are skipped rather than raised on: a registry being
    watched for promotions is *expected* to contain half-built runs,
    and discovery must not die on them.  Directories whose manifest is
    corrupt are skipped for the same reason; :func:`find_run` /
    :func:`verify_run` surface the corruption when a specific run is
    actually requested.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    runs = []
    for entry in sorted(root.iterdir()):
        if not entry.is_dir() or not (entry / MANIFEST_NAME).is_file():
            continue
        try:
            run = load_run(entry)
        except ArtifactError:
            continue
        if command is None or run.command == command:
            runs.append(run)
    return runs


def find_run(root: str | Path, config_hash: str,
             command: str | None = None) -> LoadedRun:
    """The run under *root* whose config hash starts with *config_hash*.

    Raises :class:`~repro.errors.ArtifactError` when no finalized run
    matches or the prefix is ambiguous.  This is the lookup the serving
    layer uses to turn a promoted hash into a concrete run directory.
    """
    prefix = str(config_hash).strip().lower()
    if not prefix:
        raise ArtifactError(f"empty config hash for lookup under {root}")
    matches = [
        run for run in list_runs(root, command=command)
        if run.config_hash.startswith(prefix)
    ]
    if not matches:
        what = f"{command} run" if command else "run"
        raise ArtifactError(
            f"no finalized {what} under {root} matches config hash "
            f"{prefix!r}"
        )
    if len(matches) > 1:
        raise ArtifactError(
            f"config hash prefix {prefix!r} is ambiguous under {root}: "
            f"{', '.join(run.path.name for run in matches)}"
        )
    return matches[0]


def verify_run(path: str | Path) -> LoadedRun:
    """:func:`load_run`, then re-hash every inventoried artifact.

    Raises :class:`~repro.errors.ArtifactError` naming the first file
    that is missing or whose bytes no longer match the manifest, or any
    file present on disk but absent from the inventory (an orphan —
    written after ``finalize()``, so its provenance is unknown); also
    re-checks the recorded config hash against the recomputed one.
    """
    run = load_run(path)
    recomputed = run.config.content_hash()
    if recomputed != run.config_hash:
        raise ArtifactError(
            f"{run.path}: config hash mismatch (manifest says "
            f"{run.config_hash[:12]}, config hashes to {recomputed[:12]})"
        )
    for rel, meta in sorted(run.manifest["files"].items()):
        file_path = run.path / rel
        if not file_path.is_file():
            raise ArtifactError(f"{run.path}: inventoried file {rel} missing")
        digest = _file_sha256(file_path)
        if digest != meta.get("sha256"):
            raise ArtifactError(
                f"{run.path}: {rel} checksum mismatch "
                f"(manifest {str(meta.get('sha256'))[:12]}, "
                f"on disk {digest[:12]})"
            )
    inventoried = set(run.manifest["files"])
    orphans = sorted(
        entry.relative_to(run.path).as_posix()
        for entry in run.path.rglob("*")
        if entry.is_file()
        and entry.name != MANIFEST_NAME
        and entry.relative_to(run.path).as_posix() not in inventoried
    )
    if orphans:
        raise ArtifactError(
            f"{run.path}: file(s) on disk but missing from the manifest "
            f"inventory (written after finalize?): {', '.join(orphans)}"
        )
    return run
