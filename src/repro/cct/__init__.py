"""Calling-context-tree substrate (HPCToolkit's data model).

HPCToolkit attributes sampled counters to nodes of a calling context
tree (CCT).  This package provides that structure: :class:`CCTNode`
trees with per-node exclusive metrics, inclusive aggregation, traversal,
pruning, and construction from an application's kernel list.
"""

from repro.cct.tree import CCTNode, build_app_cct

__all__ = ["CCTNode", "build_app_cct"]
