"""Calling context tree structure and operations."""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.apps.spec import AppSpec

__all__ = ["CCTNode", "build_app_cct"]


class CCTNode:
    """One calling-context-tree frame.

    Exclusive metrics live on the node; inclusive values are computed on
    demand by summing the subtree.  Node identity is its path from the
    root (names joined by ``/``), matching how profilers distinguish the
    same function called from different contexts.
    """

    def __init__(self, name: str, parent: "CCTNode | None" = None):
        if not name or "/" in name:
            raise ValueError(f"invalid frame name {name!r}")
        self.name = name
        self.parent = parent
        self.children: list[CCTNode] = []
        self.metrics: dict[str, float] = {}
        if parent is not None:
            parent.children.append(self)

    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        parts = []
        node: CCTNode | None = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def depth(self) -> int:
        d = 0
        node = self.parent
        while node is not None:
            d += 1
            node = node.parent
        return d

    def child(self, name: str) -> "CCTNode":
        """Return the existing child *name* or create it."""
        for c in self.children:
            if c.name == name:
                return c
        return CCTNode(name, parent=self)

    def walk(self) -> Iterator["CCTNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for c in self.children:
            yield from c.walk()

    def leaves(self) -> list["CCTNode"]:
        return [n for n in self.walk() if n.is_leaf]

    @property
    def num_nodes(self) -> int:
        return sum(1 for _ in self.walk())

    # ------------------------------------------------------------------
    def inclusive(self, metric: str) -> float:
        """Sum of *metric* over this subtree (0 where absent)."""
        return sum(n.metrics.get(metric, 0.0) for n in self.walk())

    def inclusive_all(self) -> dict[str, float]:
        """Inclusive values of every metric present in the subtree."""
        out: dict[str, float] = {}
        for n in self.walk():
            for k, v in n.metrics.items():
                out[k] = out.get(k, 0.0) + v
        return out

    def prune(self, keep: Callable[["CCTNode"], bool]) -> "CCTNode":
        """Return a copy of the subtree with nodes failing *keep* removed.

        An interior node is kept if it passes *keep* itself or any
        descendant is kept (so kept leaves stay reachable).  The root is
        always kept.
        """

        def rebuild(src: CCTNode, dst_parent: CCTNode | None) -> CCTNode | None:
            copied = CCTNode(src.name, parent=None)
            copied.metrics = dict(src.metrics)
            kept_children = []
            for c in src.children:
                r = rebuild(c, copied)
                if r is not None:
                    kept_children.append(r)
            copied.children = kept_children
            for kc in kept_children:
                kc.parent = copied
            if dst_parent is None or keep(src) or kept_children:
                return copied
            return None

        result = rebuild(self, None)
        assert result is not None  # root always kept
        return result

    def format_tree(self, metric: str | None = None) -> str:
        """ASCII rendering (hpcviewer-style) for debugging and docs."""
        lines = []
        for node in self.walk():
            suffix = ""
            if metric is not None:
                suffix = f"  [{node.metrics.get(metric, 0.0):.3g}]"
            lines.append("  " * node.depth + node.name + suffix)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"CCTNode({self.path!r}, {len(self.children)} children)"


def build_app_cct(app: AppSpec) -> CCTNode:
    """Build the canonical CCT skeleton for an application.

    Shape: ``main -> initialize | solve -> <kernels...> | finalize``,
    mirroring the init/loop/teardown structure of the proxy apps.
    Kernel leaves carry a ``weight`` metric used by the profiler to
    distribute run-level counters.
    """
    root = CCTNode("main")
    CCTNode("initialize", parent=root)
    solve = CCTNode("solve", parent=root)
    for kernel in app.kernels:
        leaf = CCTNode(kernel.name, parent=solve)
        leaf.metrics["weight"] = kernel.weight
    CCTNode("finalize", parent=root)
    return root
