"""Lightweight columnar dataframe substrate.

The paper's data pipeline (Section V) collects profiler output into a
pandas ``DataFrame``.  pandas is unavailable in this environment, so
:mod:`repro.frame` provides the small, typed, NumPy-backed subset of the
dataframe API that the rest of the reproduction needs:

* :class:`Frame` — ordered mapping of named, equal-length NumPy columns.
* selection / boolean filtering / row slicing
* ``groupby`` aggregation with named reducers
* ``sort_values``, ``concat``, ``join`` (left/inner on a single key)
* CSV round-tripping for dataset persistence

Numeric columns are stored as ``float64`` or ``int64`` arrays; string
columns as object arrays.  All operations return new frames; columns are
copied on construction so a ``Frame`` never aliases caller-owned storage.
"""

from repro.frame.frame import Frame, concat
from repro.frame.io import read_csv, write_csv

__all__ = ["Frame", "concat", "read_csv", "write_csv"]
