"""CSV persistence for :class:`repro.frame.Frame`.

The MP-HPC dataset is materialized to disk as CSV so that the ML stage can
be decoupled from the (simulated) data-collection stage, mirroring the
paper's pipeline in which profiling runs happen on HPC systems and
modeling happens later on a workstation.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import numpy as np

from repro.frame.frame import Frame

__all__ = ["read_csv", "write_csv"]


def write_csv(frame: Frame, path: str | Path) -> None:
    """Write *frame* to *path* as RFC-4180 CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(frame.columns)
        cols = [frame[name] for name in frame.columns]
        for i in range(frame.num_rows):
            writer.writerow([_render(col[i]) for col in cols])


def read_csv(path_or_buffer: str | Path | io.TextIOBase) -> Frame:
    """Read a CSV written by :func:`write_csv` back into a :class:`Frame`.

    Column types are inferred: a column parses as int64 if every value is
    an integer literal, float64 if every value parses as float (empty cells
    become NaN), and object (str) otherwise.
    """
    if isinstance(path_or_buffer, (str, Path)):
        with Path(path_or_buffer).open(newline="") as fh:
            return _read(fh)
    return _read(path_or_buffer)


def _read(fh) -> Frame:
    reader = csv.reader(fh)
    try:
        header = next(reader)
    except StopIteration:
        return Frame()
    raw: list[list[str]] = [[] for _ in header]
    for row in reader:
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} fields, expected {len(header)}: {row!r}"
            )
        for i, cell in enumerate(row):
            raw[i].append(cell)
    data = {name: _infer(values) for name, values in zip(header, raw)}
    return Frame(data)


def _render(value) -> str:
    if isinstance(value, (float, np.floating)):
        return repr(float(value))
    return str(value)


def _infer(values: list[str]) -> np.ndarray:
    if _all(values, _is_int):
        return np.array([int(v) for v in values], dtype=np.int64)
    if _all(values, _is_float):
        return np.array(
            [np.nan if v == "" else float(v) for v in values], dtype=np.float64
        )
    return np.array(values, dtype=object)


def _all(values: list[str], pred) -> bool:
    return bool(values) and all(pred(v) for v in values)


def _is_int(s: str) -> bool:
    try:
        int(s)
        return True
    except ValueError:
        return False


def _is_float(s: str) -> bool:
    if s == "":
        return True
    try:
        float(s)
        return True
    except ValueError:
        return False
