"""Core :class:`Frame` implementation.

A :class:`Frame` is an ordered mapping ``name -> numpy array`` where every
column has the same length.  It supports the subset of dataframe behaviour
the reproduction pipeline needs, with copy-on-construction semantics so
frames never alias caller data.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Callable

import numpy as np

__all__ = ["Frame", "concat"]


def _as_column(values: Any, length: int | None = None) -> np.ndarray:
    """Coerce *values* into a 1-D column array.

    Scalars are broadcast to *length*.  Numeric inputs become ``float64``
    or ``int64``; booleans stay boolean; everything else becomes an object
    array (used for strings).
    """
    if np.isscalar(values) or values is None:
        if length is None:
            raise ValueError("scalar column requires a frame length")
        values = [values] * length
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"columns must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind in "iu":
        arr = arr.astype(np.int64)
    elif arr.dtype.kind == "f":
        arr = arr.astype(np.float64)
    elif arr.dtype.kind == "b":
        arr = arr.astype(bool)
    elif arr.dtype.kind in "US O":
        arr = arr.astype(object)
    else:
        arr = arr.astype(object)
    return arr.copy()


class Frame:
    """An immutable-by-convention columnar table.

    Parameters
    ----------
    data:
        Mapping from column name to a 1-D sequence.  All columns must have
        equal length.  Scalars broadcast to the length of the other columns.

    Examples
    --------
    >>> f = Frame({"app": ["amg", "comd"], "time": [1.5, 2.0]})
    >>> f.num_rows
    2
    >>> f.filter(f["time"] > 1.6)["app"][0]
    'comd'
    """

    def __init__(self, data: Mapping[str, Any] | None = None):
        self._columns: dict[str, np.ndarray] = {}
        if not data:
            return
        # First pass: find the length from the first non-scalar value.
        length: int | None = None
        for v in data.values():
            if not np.isscalar(v) and v is not None:
                length = len(v)
                break
        for name, values in data.items():
            col = _as_column(values, length)
            if length is None:
                length = len(col)
            if len(col) != length:
                raise ValueError(
                    f"column {name!r} has length {len(col)}, expected {length}"
                )
            self._columns[str(name)] = col

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        """Column names, in insertion order."""
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_columns)

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, key: str | Sequence[str]) -> np.ndarray | "Frame":
        """``frame["col"]`` returns the column array (a view of internal
        storage — do not mutate); ``frame[["a","b"]]`` returns a sub-frame."""
        if isinstance(key, str):
            try:
                return self._columns[key]
            except KeyError:
                raise KeyError(
                    f"no column {key!r}; available: {self.columns}"
                ) from None
        return self.select(list(key))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        if self.columns != other.columns or self.num_rows != other.num_rows:
            return False
        for name in self.columns:
            a, b = self._columns[name], other._columns[name]
            if a.dtype.kind == "f" and b.dtype.kind == "f":
                if not np.allclose(a, b, equal_nan=True):
                    return False
            elif not np.array_equal(a, b):
                return False
        return True

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"Frame({self.num_rows} rows x {self.num_columns} cols: {self.columns})"

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]]) -> "Frame":
        """Build a frame from an iterable of dict rows.

        Keys are unioned across records; missing numeric values become NaN
        and missing object values ``None``.
        """
        rows = list(records)
        if not rows:
            return cls()
        names: list[str] = []
        for row in rows:
            for k in row:
                if k not in names:
                    names.append(k)
        data = {
            name: [row.get(name, np.nan if _looks_numeric(rows, name) else None)
                   for row in rows]
            for name in names
        }
        return cls(data)

    def to_records(self) -> list[dict[str, Any]]:
        """Return rows as a list of dicts (scalars unboxed to Python types)."""
        out = []
        for i in range(self.num_rows):
            out.append({name: _unbox(col[i]) for name, col in self._columns.items()})
        return out

    def copy(self) -> "Frame":
        return Frame(self._columns)

    def with_column(self, name: str, values: Any) -> "Frame":
        """Return a new frame with *name* added or replaced."""
        new = self.copy()
        new._columns[str(name)] = _as_column(values, self.num_rows)
        if len(new._columns[str(name)]) != self.num_rows and self.num_columns:
            raise ValueError("column length mismatch")
        return new

    def with_columns(self, columns: Mapping[str, Any]) -> "Frame":
        """Return a new frame with every column in *columns* added or
        replaced, in one copy.

        Equivalent to chaining :meth:`with_column` once per entry
        (replaced columns keep their position; new columns append in
        mapping order) but copies the frame once instead of once per
        column — the difference between O(cols) and O(cols^2) array
        copies when deriving many features.
        """
        new = self.copy()
        for name, values in columns.items():
            col = _as_column(values, new.num_rows)
            if len(col) != new.num_rows and new.num_columns:
                raise ValueError("column length mismatch")
            new._columns[str(name)] = col
        return new

    def drop(self, names: str | Sequence[str]) -> "Frame":
        """Return a new frame without the given columns."""
        if isinstance(names, str):
            names = [names]
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise KeyError(f"cannot drop missing columns {missing}")
        return self.select([c for c in self.columns if c not in set(names)])

    def rename(self, mapping: Mapping[str, str]) -> "Frame":
        """Return a new frame with columns renamed via *mapping*."""
        missing = [n for n in mapping if n not in self._columns]
        if missing:
            raise KeyError(f"cannot rename missing columns {missing}")
        new = Frame()
        for name, col in self._columns.items():
            new._columns[mapping.get(name, name)] = col.copy()
        return new

    # ------------------------------------------------------------------
    # Row / column selection
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "Frame":
        """Return a sub-frame with just the named columns, in given order."""
        new = Frame()
        for name in names:
            if name not in self._columns:
                raise KeyError(f"no column {name!r}; available: {self.columns}")
            new._columns[name] = self._columns[name].copy()
        return new

    def filter(self, mask: np.ndarray) -> "Frame":
        """Return the rows where boolean *mask* is True."""
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (self.num_rows,):
            raise ValueError(
                f"mask must be boolean of length {self.num_rows}, "
                f"got dtype={mask.dtype} shape={mask.shape}"
            )
        return self.take(np.flatnonzero(mask))

    def take(self, indices: np.ndarray | Sequence[int]) -> "Frame":
        """Return rows at integer *indices* (with repetition allowed)."""
        idx = np.asarray(indices, dtype=np.int64)
        new = Frame()
        for name, col in self._columns.items():
            new._columns[name] = col[idx]
        return new

    def head(self, n: int = 5) -> "Frame":
        return self.take(np.arange(min(n, self.num_rows)))

    def sort_values(self, by: str | Sequence[str], descending: bool = False) -> "Frame":
        """Return a new frame sorted by one or more columns (stable)."""
        if isinstance(by, str):
            by = [by]
        keys = []
        for name in reversed(list(by)):
            col = self[name]
            keys.append(col.astype(str) if col.dtype == object else col)
        order = np.lexsort(keys)
        if descending:
            order = order[::-1]
        return self.take(order)

    def unique(self, name: str) -> np.ndarray:
        """Sorted unique values of a column."""
        return np.unique(self[name].astype(str) if self[name].dtype == object
                         else self[name])

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def groupby(
        self,
        by: str | Sequence[str],
        aggregations: Mapping[str, tuple[str, Callable[[np.ndarray], Any]] | str],
    ) -> "Frame":
        """Group rows and aggregate columns.

        Parameters
        ----------
        by:
            Key column(s).
        aggregations:
            ``{output_name: (input_column, reducer)}`` where *reducer* is a
            callable over the group's values, or ``{column: "mean"|"sum"|
            "min"|"max"|"count"|"std"}`` shorthand aggregating a column into
            itself.

        Returns
        -------
        Frame
            One row per distinct key combination, sorted by key.
        """
        if isinstance(by, str):
            by = [by]
        normalized: dict[str, tuple[str, Callable[[np.ndarray], Any]]] = {}
        named = {
            "mean": np.mean, "sum": np.sum, "min": np.min,
            "max": np.max, "count": len, "std": np.std,
        }
        for out, spec in aggregations.items():
            if isinstance(spec, str):
                normalized[out] = (out, named[spec])
            else:
                col, fn = spec
                normalized[out] = (col, named[fn] if isinstance(fn, str) else fn)

        # Build composite group keys.
        key_cols = [self[name] for name in by]
        key_strs = np.array(
            ["\x1f".join(str(c[i]) for c in key_cols) for i in range(self.num_rows)],
            dtype=object,
        )
        uniq, inverse = np.unique(key_strs.astype(str), return_inverse=True)
        n_groups = len(uniq)
        # Representative row index per group (first occurrence).
        first_idx = np.full(n_groups, -1, dtype=np.int64)
        for i, g in enumerate(inverse):
            if first_idx[g] < 0:
                first_idx[g] = i

        data: dict[str, list] = {name: [] for name in by}
        data.update({out: [] for out in normalized})
        for g in range(n_groups):
            rows = np.flatnonzero(inverse == g)
            for name in by:
                data[name].append(_unbox(self[name][first_idx[g]]))
            for out, (col, fn) in normalized.items():
                data[out].append(fn(self[col][rows]))
        return Frame(data)

    def pivot(self, index: str, columns: str, values: str) -> "Frame":
        """Reshape long-form rows into a wide table.

        One output row per distinct *index* value; one output column per
        distinct *columns* value (prefixed with the column name),
        holding the corresponding *values* entry.  Missing combinations
        become NaN; duplicate combinations raise.
        """
        idx_vals = [str(v) for v in self[index]]
        col_vals = [str(v) for v in self[columns]]
        val_col = self[values]
        if val_col.dtype == object:
            raise TypeError(f"values column {values!r} must be numeric")
        row_order = list(dict.fromkeys(idx_vals))
        col_order = list(dict.fromkeys(col_vals))
        grid = {
            (r, c): np.nan for r in row_order for c in col_order
        }
        seen = set()
        for r, c, v in zip(idx_vals, col_vals, val_col):
            if (r, c) in seen:
                raise ValueError(f"duplicate entry for ({r!r}, {c!r})")
            seen.add((r, c))
            grid[(r, c)] = float(v)
        data: dict[str, Any] = {index: row_order}
        for c in col_order:
            data[f"{values}_{c}"] = [grid[(r, c)] for r in row_order]
        return Frame(data)

    def describe(self, name: str) -> dict[str, float]:
        """Summary statistics for a numeric column."""
        col = self[name]
        if col.dtype == object:
            raise TypeError(f"column {name!r} is not numeric")
        return {
            "count": float(len(col)),
            "mean": float(np.mean(col)),
            "std": float(np.std(col)),
            "min": float(np.min(col)),
            "max": float(np.max(col)),
        }

    # ------------------------------------------------------------------
    # Joins and matrix export
    # ------------------------------------------------------------------
    def join(self, other: "Frame", on: str, how: str = "inner",
             suffix: str = "_right") -> "Frame":
        """Join with *other* on a single key column.

        Supports ``how`` in {"inner", "left"}.  Non-key columns of *other*
        that collide with ours are suffixed.  For left joins, unmatched
        numeric columns get NaN and object columns ``None``.
        """
        if how not in ("inner", "left"):
            raise ValueError(f"unsupported join type {how!r}")
        right_index: dict[Any, int] = {}
        for i, v in enumerate(other[on]):
            right_index.setdefault(_unbox(v), i)

        left_rows: list[int] = []
        right_rows: list[int | None] = []
        for i, v in enumerate(self[on]):
            j = right_index.get(_unbox(v))
            if j is None:
                if how == "left":
                    left_rows.append(i)
                    right_rows.append(None)
            else:
                left_rows.append(i)
                right_rows.append(j)

        result = self.take(np.asarray(left_rows, dtype=np.int64))
        for name in other.columns:
            if name == on:
                continue
            out_name = name if name not in self._columns else name + suffix
            col = other[name]
            if col.dtype == object:
                vals = [None if j is None else col[j] for j in right_rows]
            else:
                vals = [np.nan if j is None else float(col[j]) for j in right_rows]
            result = result.with_column(out_name, vals)
        return result

    def to_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Stack numeric columns into a ``(rows, cols)`` float64 matrix."""
        names = list(names) if names is not None else self.columns
        cols = []
        for name in names:
            col = self[name]
            if col.dtype == object:
                raise TypeError(f"column {name!r} is not numeric")
            cols.append(col.astype(np.float64))
        if not cols:
            return np.empty((self.num_rows, 0))
        return np.column_stack(cols)


def concat(frames: Sequence[Frame]) -> Frame:
    """Vertically concatenate frames with identical column sets."""
    frames = [f for f in frames if f.num_columns]
    if not frames:
        return Frame()
    names = frames[0].columns
    for f in frames[1:]:
        if f.columns != names:
            raise ValueError(
                f"cannot concat: column mismatch {f.columns} vs {names}"
            )
    out = Frame()
    for name in names:
        parts = [f[name] for f in frames]
        if any(p.dtype == object for p in parts):
            merged = np.concatenate([p.astype(object) for p in parts])
        else:
            merged = np.concatenate(parts)
        out._columns[name] = _as_column(merged)
    return out


def _looks_numeric(rows: list[Mapping[str, Any]], name: str) -> bool:
    for row in rows:
        if name in row and row[name] is not None:
            return isinstance(row[name], (int, float, np.integer, np.floating))
    return True


def _unbox(value: Any) -> Any:
    """Convert NumPy scalars to plain Python scalars."""
    if isinstance(value, np.generic):
        return value.item()
    return value
