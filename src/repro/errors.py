"""Domain error hierarchy.

Corruption in on-disk artifacts used to surface as whatever the decoder
happened to raise (``json.JSONDecodeError``, bare ``ValueError``,
``KeyError``); callers had to know the decoding internals to catch
anything.  These classes give each artifact family one exception that
always carries the file path and, where known, the offending line.

``ProfileError`` and ``TraceError`` also subclass :class:`ValueError`
so existing ``except ValueError`` call sites keep working; likewise
:class:`UnknownNameError` subclasses :class:`KeyError` (the exception
dict-backed lookups used to raise) and :class:`SerializationError`
subclasses both :class:`ValueError` and :class:`KeyError` (the two
exceptions a mis-shaped model payload used to leak).  Both override
``__str__`` so messages print plainly instead of with ``KeyError``'s
quoting.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ProfileError",
    "TraceError",
    "DatasetError",
    "PackingError",
    "UnknownNameError",
    "ConfigError",
    "SerializationError",
    "ArtifactError",
    "TelemetryError",
    "ParallelExecutionError",
    "SweepError",
    "SweepCellError",
    "ServeError",
]


class ReproError(Exception):
    """Base class for this package's domain errors."""


class ProfileError(ReproError, ValueError):
    """A profile database (JSON) is corrupt or structurally invalid."""


class TraceError(ReproError, ValueError):
    """A workload trace (SWF) is corrupt or structurally invalid."""


class DatasetError(ReproError, ValueError):
    """A persisted dataset artifact (CSV/npz) is corrupt or has drifted
    from the MP-HPC schema; the message names the path and the
    missing/extra columns."""


class PackingError(ReproError, ValueError):
    """A feature matrix cannot be packed to uint8 bin codes: the bin
    count exceeds the uint8 range (or is too small to split on), or a
    pre-packed matrix has the wrong dtype/shape for the model it is
    offered to.  Subclasses :class:`ValueError` so call sites that
    predate the typed error keep catching it."""


class UnknownNameError(ReproError, KeyError, ValueError):
    """A registry lookup failed: no plugin registered under that name.

    Carries the registry ``kind`` (application, machine, strategy, ...),
    the offending ``name``, the valid ``known`` names, and close-match
    ``suggestions`` so the CLI can print a did-you-mean line.  Subclasses
    both ``KeyError`` (what dict-backed lookups used to raise) and
    ``ValueError`` (what argument validation used to raise) so every
    pre-registry call site keeps catching it.
    """

    def __init__(self, kind: str, name: object,
                 known: list[str] | tuple[str, ...] = (),
                 suggestions: tuple[str, ...] = ()):
        self.kind = kind
        self.name = name
        self.known = tuple(known)
        self.suggestions = tuple(suggestions)
        message = f"unknown {kind} {name!r}"
        if self.suggestions:
            hints = " or ".join(repr(s) for s in self.suggestions)
            message += f"; did you mean {hints}?"
        if self.known:
            plural = (kind[:-1] + "ies"
                      if kind.endswith("y") and kind[-2:-1] not in "aeiou"
                      else kind + "s")
            message += f" (known {plural}: {', '.join(self.known)})"
        self.message = message
        super().__init__(message)

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument; print the message plain.
        return self.message


class ConfigError(ReproError, ValueError):
    """An experiment config is invalid: bad field value, unknown field,
    malformed JSON, or a schema-version / command mismatch on load."""


class SerializationError(ReproError, ValueError, KeyError):
    """A persisted model payload cannot be (de)serialized: unknown or
    missing ``kind``, a ``format_version`` mismatch, or missing keys."""

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class ArtifactError(ReproError, ValueError):
    """A run directory or its ``manifest.json`` is missing, corrupt, or
    fails checksum verification."""


class TelemetryError(ReproError, ValueError):
    """Telemetry misuse: unknown mode, a metric re-requested as a
    different kind, mismatched histogram buckets on merge, or a
    malformed snapshot."""


class ParallelExecutionError(ReproError, RuntimeError):
    """A process-pool worker died without raising (OOM-kill, segfault,
    ``os._exit``), so no task exception exists to re-raise.

    Carries the contiguous ``(task_start, task_stop)`` index range of
    the chunk whose worker died, so callers can retry or report the
    failed shard instead of inspecting an opaque ``BrokenProcessPool``.
    """

    def __init__(self, message: str, task_start: int = -1,
                 task_stop: int = -1):
        super().__init__(message)
        self.task_start = task_start
        self.task_stop = task_stop


class SweepError(ReproError, ValueError):
    """A sweep spec, journal, or resume precondition is invalid: bad
    spec JSON, an axis naming an unknown config field, a journal for a
    different spec, or an existing journal without ``--resume``."""


class ServeError(ReproError, ValueError):
    """A prediction-service request or server precondition is invalid.

    Carries an HTTP-ish status ``code`` so the server can map every
    defect to one response shape: ``400`` for malformed payloads (not
    an object, neither/both of ``record``/``features``, wrong feature
    width, non-numeric entries), ``503`` for load shedding, ``500`` for
    an internal batch failure.  The ``reason`` is a short machine-
    readable slug (``"bad-payload"``, ``"shed"``, ...) that load tests
    assert on without parsing prose.
    """

    def __init__(self, message: str, code: int = 400,
                 reason: str = "bad-payload"):
        super().__init__(message)
        self.code = int(code)
        self.reason = reason


class SweepCellError(ReproError, RuntimeError):
    """One sweep cell's attempt failed.  Typed by ``kind``:

    * ``"worker-death"``  — the cell's worker process died on a signal
      (the in-process analogue of ``BrokenProcessPool``);
    * ``"timeout"``       — the cell exceeded its wall-clock budget and
      was killed;
    * ``"nonzero-exit"``  — the cell's command raised / exited nonzero;
    * ``"verify-failed"`` — the command exited 0 but its run directory
      failed :func:`repro.artifacts.verify_run`.

    Never crashes the sweep parent: the runner records it in the
    journal, retries under the cell's :class:`RetryPolicy`, and
    quarantines the cell once the budget is exhausted.
    """

    KINDS = ("worker-death", "timeout", "nonzero-exit", "verify-failed")

    def __init__(self, cell_id: str, kind: str, attempt: int,
                 detail: str = ""):
        if kind not in self.KINDS:
            raise ValueError(f"unknown SweepCellError kind {kind!r}")
        self.cell_id = cell_id
        self.kind = kind
        self.attempt = attempt
        self.detail = detail
        message = f"cell {cell_id} attempt {attempt}: {kind}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
