"""Domain error hierarchy.

Corruption in on-disk artifacts used to surface as whatever the decoder
happened to raise (``json.JSONDecodeError``, bare ``ValueError``,
``KeyError``); callers had to know the decoding internals to catch
anything.  These classes give each artifact family one exception that
always carries the file path and, where known, the offending line.

``ProfileError`` and ``TraceError`` also subclass :class:`ValueError`
so existing ``except ValueError`` call sites keep working.
"""

from __future__ import annotations

__all__ = ["ReproError", "ProfileError", "TraceError", "DatasetError"]


class ReproError(Exception):
    """Base class for this package's domain errors."""


class ProfileError(ReproError, ValueError):
    """A profile database (JSON) is corrupt or structurally invalid."""


class TraceError(ReproError, ValueError):
    """A workload trace (SWF) is corrupt or structurally invalid."""


class DatasetError(ReproError, ValueError):
    """A persisted dataset artifact (CSV/npz) is corrupt or has drifted
    from the MP-HPC schema; the message names the path and the
    missing/extra columns."""
