"""Domain error hierarchy.

Corruption in on-disk artifacts used to surface as whatever the decoder
happened to raise (``json.JSONDecodeError``, bare ``ValueError``,
``KeyError``); callers had to know the decoding internals to catch
anything.  These classes give each artifact family one exception that
always carries the file path and, where known, the offending line.

``ProfileError`` and ``TraceError`` also subclass :class:`ValueError`
so existing ``except ValueError`` call sites keep working; likewise
:class:`UnknownNameError` subclasses :class:`KeyError` (the exception
dict-backed lookups used to raise) and :class:`SerializationError`
subclasses both :class:`ValueError` and :class:`KeyError` (the two
exceptions a mis-shaped model payload used to leak).  Both override
``__str__`` so messages print plainly instead of with ``KeyError``'s
quoting.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ProfileError",
    "TraceError",
    "DatasetError",
    "UnknownNameError",
    "ConfigError",
    "SerializationError",
    "ArtifactError",
    "TelemetryError",
]


class ReproError(Exception):
    """Base class for this package's domain errors."""


class ProfileError(ReproError, ValueError):
    """A profile database (JSON) is corrupt or structurally invalid."""


class TraceError(ReproError, ValueError):
    """A workload trace (SWF) is corrupt or structurally invalid."""


class DatasetError(ReproError, ValueError):
    """A persisted dataset artifact (CSV/npz) is corrupt or has drifted
    from the MP-HPC schema; the message names the path and the
    missing/extra columns."""


class UnknownNameError(ReproError, KeyError, ValueError):
    """A registry lookup failed: no plugin registered under that name.

    Carries the registry ``kind`` (application, machine, strategy, ...),
    the offending ``name``, the valid ``known`` names, and close-match
    ``suggestions`` so the CLI can print a did-you-mean line.  Subclasses
    both ``KeyError`` (what dict-backed lookups used to raise) and
    ``ValueError`` (what argument validation used to raise) so every
    pre-registry call site keeps catching it.
    """

    def __init__(self, kind: str, name: object,
                 known: list[str] | tuple[str, ...] = (),
                 suggestions: tuple[str, ...] = ()):
        self.kind = kind
        self.name = name
        self.known = tuple(known)
        self.suggestions = tuple(suggestions)
        message = f"unknown {kind} {name!r}"
        if self.suggestions:
            hints = " or ".join(repr(s) for s in self.suggestions)
            message += f"; did you mean {hints}?"
        if self.known:
            plural = (kind[:-1] + "ies"
                      if kind.endswith("y") and kind[-2:-1] not in "aeiou"
                      else kind + "s")
            message += f" (known {plural}: {', '.join(self.known)})"
        self.message = message
        super().__init__(message)

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument; print the message plain.
        return self.message


class ConfigError(ReproError, ValueError):
    """An experiment config is invalid: bad field value, unknown field,
    malformed JSON, or a schema-version / command mismatch on load."""


class SerializationError(ReproError, ValueError, KeyError):
    """A persisted model payload cannot be (de)serialized: unknown or
    missing ``kind``, a ``format_version`` mismatch, or missing keys."""

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class ArtifactError(ReproError, ValueError):
    """A run directory or its ``manifest.json`` is missing, corrupt, or
    fails checksum verification."""


class TelemetryError(ReproError, ValueError):
    """Telemetry misuse: unknown mode, a metric re-requested as a
    different kind, mismatched histogram buckets on merge, or a
    malformed snapshot."""
