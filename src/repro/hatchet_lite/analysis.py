"""Cross-profile analysis operations (Hatchet's analysis layer).

Hatchet's value proposition (Section II-A of the paper) is programmatic
*comparison* of many profiles — "studying trends in large numbers of
profiles" that hpcviewer cannot do.  This module provides the core
comparison operations over our profiles:

* :func:`flat_profile` — collapse a CCT to per-function totals.
* :func:`diff_profiles` — align two profiles by call path and compare a
  metric (the classic A/B analysis between two runs or two builds).
* :func:`cross_arch_table` — align the *same* run profiled on several
  architectures on canonical counter fields, the operation underlying
  the MP-HPC dataset's premise that similarly-named counters are
  comparable across systems.
"""

from __future__ import annotations

import numpy as np

from repro.arch.machines import get_machine
from repro.frame import Frame
from repro.profiler.counters import schema_for
from repro.profiler.profile import Profile

__all__ = ["flat_profile", "diff_profiles", "cross_arch_table"]


def flat_profile(profile: Profile, metric: str) -> Frame:
    """Aggregate a metric by function name, ignoring calling context.

    Returns one row per function, sorted by descending total, with the
    fraction of the run total (the classic "flat profile" view).
    """
    totals: dict[str, float] = {}
    for node in profile.root.walk():
        if metric in node.metrics:
            totals[node.name] = totals.get(node.name, 0.0) + \
                node.metrics[metric]
    if not totals:
        raise KeyError(f"metric {metric!r} not present in profile")
    grand = sum(totals.values())
    rows = [
        {"function": name, metric: value,
         "fraction": value / grand if grand else 0.0}
        for name, value in sorted(totals.items(), key=lambda kv: -kv[1])
    ]
    return Frame.from_records(rows)


def diff_profiles(a: Profile, b: Profile, metric: str) -> Frame:
    """Align two profiles by call path and compare *metric*.

    Returns one row per path present in either profile with columns
    ``value_a``, ``value_b``, ``ratio`` (b/a; NaN when a is 0) — sorted
    by the largest absolute difference first.
    """
    values_a = {n.path: n.metrics.get(metric) for n in a.root.walk()}
    values_b = {n.path: n.metrics.get(metric) for n in b.root.walk()}
    paths = sorted(set(values_a) | set(values_b))
    rows = []
    for path in paths:
        va = values_a.get(path)
        vb = values_b.get(path)
        if va is None and vb is None:
            continue
        va = 0.0 if va is None else va
        vb = 0.0 if vb is None else vb
        rows.append(
            {
                "path": path,
                "value_a": va,
                "value_b": vb,
                "ratio": vb / va if va else float("nan"),
                "abs_diff": abs(vb - va),
            }
        )
    if not rows:
        raise KeyError(f"metric {metric!r} not present in either profile")
    frame = Frame.from_records(rows)
    return frame.sort_values("abs_diff", descending=True)


def cross_arch_table(profiles: list[Profile]) -> Frame:
    """Canonical counter fields of the same run across architectures.

    Decodes each profile through its machine's schema and returns one
    row per machine with the canonical fields plus measured time — the
    side-by-side view behind Table III's premise.
    """
    if not profiles:
        raise ValueError("need at least one profile")
    apps = {p.meta["app"] for p in profiles}
    inputs = {p.meta["input"] for p in profiles}
    if len(apps) > 1 or len(inputs) > 1:
        raise ValueError(
            f"profiles must describe one (app, input): got {apps} x {inputs}"
        )
    rows = []
    for profile in profiles:
        machine = get_machine(profile.meta["machine"])
        gpu = bool(profile.meta["uses_gpu"]) and machine.has_gpu
        canonical = schema_for(machine, gpu).decode(profile.run_totals())
        row = {"machine": profile.meta["machine"],
               "profiler": profile.meta["profiler"],
               "time_seconds": float(profile.meta["time_seconds"])}
        row.update({k: float(v) for k, v in canonical.items()})
        rows.append(row)
    return Frame.from_records(rows)
