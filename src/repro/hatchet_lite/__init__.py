"""Hatchet substitute: programmatic analysis of profiler output.

The paper uses Hatchet to parse HPCToolkit databases into pandas
dataframes ("Hatchet is used to parse these counters from the HPCToolkit
output", Section V-B).  :class:`GraphFrame` fills the same role here:
it loads a :class:`repro.profiler.Profile` into a :class:`repro.frame.
Frame` (one row per CCT node) while retaining the tree for structural
operations (pruning, hot-path queries), and reduces a profile to the
run-level canonical counter record the dataset builder consumes.
"""

from repro.hatchet_lite.analysis import (
    cross_arch_table,
    diff_profiles,
    flat_profile,
)
from repro.hatchet_lite.graphframe import GraphFrame, run_record

__all__ = [
    "GraphFrame",
    "run_record",
    "flat_profile",
    "diff_profiles",
    "cross_arch_table",
]
