"""GraphFrame: tabular + structural view of one profile."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.arch.machines import get_machine
from repro.cct.tree import CCTNode
from repro.frame import Frame
from repro.profiler.counters import schema_for
from repro.profiler.profile import Profile

__all__ = ["GraphFrame", "run_record"]


class GraphFrame:
    """A profile as a dataframe over CCT nodes plus the tree itself.

    Mirrors Hatchet's core design: the ``dataframe`` holds one row per
    calling-context node with columns for name/path/depth and every
    counter; the ``graph`` (here the root :class:`CCTNode`) preserves
    structure for tree-aware operations.
    """

    def __init__(self, profile: Profile):
        self.profile = profile
        self.root: CCTNode = profile.root
        self.dataframe = self._build_frame(profile)

    @staticmethod
    def _build_frame(profile: Profile) -> Frame:
        counters = profile.counter_names
        rows: dict[str, list] = {
            "name": [], "path": [], "depth": [], "is_leaf": [],
        }
        for c in counters:
            rows[c] = []
        for node in profile.root.walk():
            rows["name"].append(node.name)
            rows["path"].append(node.path)
            rows["depth"].append(node.depth)
            rows["is_leaf"].append(1 if node.is_leaf else 0)
            for c in counters:
                rows[c].append(float(node.metrics.get(c, 0.0)))
        return Frame(rows)

    # ------------------------------------------------------------------
    @property
    def counter_names(self) -> list[str]:
        return self.profile.counter_names

    def hot_nodes(self, metric: str, top: int = 5) -> Frame:
        """The *top* nodes by exclusive value of *metric*."""
        if metric not in self.dataframe:
            raise KeyError(f"unknown metric {metric!r}")
        ordered = self.dataframe.sort_values(metric, descending=True)
        return ordered.head(top)

    def filter(self, keep: Callable[[CCTNode], bool]) -> "GraphFrame":
        """Hatchet-style structural filter: prune the tree, rebuild."""
        pruned = self.root.prune(keep)
        clone = Profile(meta=dict(self.profile.meta), root=pruned)
        return GraphFrame(clone)

    def exclusive_fraction(self, metric: str) -> Frame:
        """Each node's share of the run total for *metric*."""
        if metric not in self.dataframe:
            raise KeyError(f"unknown metric {metric!r}")
        total = float(np.sum(self.dataframe[metric]))
        frac = self.dataframe[metric] / total if total else self.dataframe[metric]
        return self.dataframe.select(["path"]).with_column("fraction", frac)


def run_record(profile: Profile) -> dict[str, float | str | bool]:
    """Reduce a profile to one flat run-level record.

    Decodes the machine-specific counter names back to the canonical
    event fields through the same schema that produced them, and merges
    the run metadata — this is the row format the MP-HPC dataset builder
    collects "into a Pandas dataframe" in the paper.
    """
    meta = profile.meta
    machine = get_machine(meta["machine"])
    schema = schema_for(machine, bool(meta["uses_gpu"]) and machine.has_gpu)
    canonical = schema.decode(profile.run_totals())
    record: dict[str, float | str | bool] = {
        "app": meta["app"],
        "input": meta["input"],
        "machine": meta["machine"],
        "scale": meta["scale"],
        "nodes": float(meta["nodes"]),
        "cores": float(meta["cores"]),
        "uses_gpu": float(bool(meta["uses_gpu"])),
        "time_seconds": float(meta["time_seconds"]),
    }
    record.update(canonical)
    return record
