"""Terminal-friendly visualization of study frames.

The benchmarks and examples print their reproduced figures; this module
renders the standard shapes — horizontal bar charts, two-metric bars,
and heatmaps — as plain text, so every "figure" in this repository is
viewable without a plotting stack.  All functions take
:class:`repro.frame.Frame` inputs shaped like the evaluation studies'
outputs and return strings.
"""

from __future__ import annotations

import numpy as np

from repro.frame import Frame

__all__ = ["bar_chart", "grouped_bars", "heatmap"]

_BLOCKS = " .:-=+*#%@"


def bar_chart(
    frame: Frame,
    label_column: str,
    value_column: str,
    width: int = 48,
    title: str = "",
) -> str:
    """Horizontal bar chart of one numeric column.

    Bars scale to the maximum value; each row shows label, value, bar.
    """
    labels = [str(v) for v in frame[label_column]]
    values = np.asarray(frame[value_column], dtype=np.float64)
    if len(values) == 0:
        raise ValueError("empty frame")
    if (values < 0).any():
        raise ValueError("bar_chart requires non-negative values")
    top = values.max() if values.max() > 0 else 1.0
    label_width = max(len(s) for s in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * value / top))
        lines.append(f"{label:>{label_width}s} {value:10.4g} |{bar}")
    return "\n".join(lines)


def grouped_bars(
    frame: Frame,
    label_column: str,
    value_columns: list[str],
    width: int = 40,
    title: str = "",
) -> str:
    """Side-by-side bars for several metrics of the same rows.

    The Fig. 2 shape: one label per model, one bar per metric, each
    metric scaled independently to its own maximum.
    """
    if not value_columns:
        raise ValueError("need at least one value column")
    labels = [str(v) for v in frame[label_column]]
    label_width = max(len(s) for s in labels)
    lines = [title] if title else []
    for column in value_columns:
        values = np.asarray(frame[column], dtype=np.float64)
        top = np.abs(values).max() or 1.0
        lines.append(f"[{column}]")
        for label, value in zip(labels, values):
            bar = "#" * int(round(width * abs(value) / top))
            lines.append(f"  {label:>{label_width}s} {value:9.4g} |{bar}")
    return "\n".join(lines)


def heatmap(
    frame: Frame,
    row_column: str,
    col_column: str,
    value_column: str,
    title: str = "",
    invert: bool = False,
) -> str:
    """Character-shaded heatmap of a long-form (row, col, value) frame.

    Values map onto a 10-level character ramp, normalized over the whole
    grid; ``invert=True`` makes *small* values dark (e.g. for MAE grids
    where lower is better).  Cell values are printed alongside.
    """
    rows = [str(v) for v in frame[row_column]]
    cols = [str(v) for v in frame[col_column]]
    values = np.asarray(frame[value_column], dtype=np.float64)
    row_order = list(dict.fromkeys(rows))
    col_order = list(dict.fromkeys(cols))
    grid = {(r, c): np.nan for r in row_order for c in col_order}
    for r, c, v in zip(rows, cols, values):
        grid[(r, c)] = v
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        raise ValueError("no finite values to plot")
    lo, hi = float(finite.min()), float(finite.max())
    span = (hi - lo) or 1.0

    def shade(v: float) -> str:
        if not np.isfinite(v):
            return "?"
        t = (v - lo) / span
        if invert:
            t = 1.0 - t
        return _BLOCKS[int(round(t * (len(_BLOCKS) - 1)))]

    label_width = max(len(r) for r in row_order)
    cell_width = max(max(len(c) for c in col_order), 7)
    lines = [title] if title else []
    header = " " * (label_width + 1) + " ".join(
        f"{c:>{cell_width}s}" for c in col_order
    )
    lines.append(header)
    for r in row_order:
        cells = []
        for c in col_order:
            v = grid[(r, c)]
            cells.append(f"{shade(v) * 2}{v:>{cell_width - 2}.3f}"
                         if np.isfinite(v) else "?" * cell_width)
        lines.append(f"{r:>{label_width}s} " + " ".join(cells))
    return "\n".join(lines)
