"""Wire schema for the online prediction service.

One request shape covers both deployment modes the paper implies:

* ``{"record": {...}}`` — a raw profiled run record (the output of
  :func:`repro.hatchet_lite.run_record`: canonical counter fields plus
  run metadata).  The service featurizes it with the active model's
  fitted normalizer, exactly as
  :meth:`repro.core.CrossArchPredictor.predict_record` would.
* ``{"features": [...]}`` — an already-featurized row, matching the
  active model's feature columns.  The fast path for callers that
  featurize upstream (e.g. a scheduler holding a feature cache).

Optional keys: ``nodes_required`` (placement sizing, default 1) and
``uses_gpu`` (drives the model-free heuristic tier; inferred from the
record when present).

Responses always carry ``rpv`` (time ratios, canonical system order),
``systems``, ``ranked`` (fastest first), ``recommended`` (the strategy's
placement), ``tier`` (which degradation tier answered), ``model_hash``
(the config hash of the model that answered — hot-swap observability),
and ``batch_size`` (how many requests shared the micro-batch).

Every defect raises a typed :class:`~repro.errors.ServeError` carrying
an HTTP status code and a machine-readable ``reason`` slug, so the
server maps malformed input to one 400 response shape and load tests
assert on slugs instead of prose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ServeError

__all__ = [
    "PROTOCOL_VERSION",
    "ParsedRequest",
    "parse_predict_payload",
    "predict_response",
    "error_response",
]

#: Bumped whenever the request/response schema changes incompatibly.
PROTOCOL_VERSION = 1

#: Hard cap on one request's feature width; anything wider is hostile.
_MAX_FEATURES = 4096


@dataclass(frozen=True)
class ParsedRequest:
    """One validated prediction request.

    ``kind`` is ``"record"`` or ``"features"``; exactly one of
    ``record``/``features`` is set.  ``features`` width is validated
    against the *active model* at batch time (the model can change
    between admission and flush under hot-swap), not here.
    """

    kind: str
    record: dict | None
    features: tuple[float, ...] | None
    nodes_required: int
    uses_gpu: bool


def parse_predict_payload(payload) -> ParsedRequest:
    """Validate one ``/predict`` body; typed :class:`ServeError` on any
    defect (the server turns these into one 400 JSON shape)."""
    if not isinstance(payload, dict):
        raise ServeError(
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    unknown = sorted(
        set(payload) - {"record", "features", "nodes_required", "uses_gpu"}
    )
    if unknown:
        raise ServeError(f"unknown request key(s): {', '.join(unknown)}")
    has_record = "record" in payload
    has_features = "features" in payload
    if has_record == has_features:
        raise ServeError(
            "request must carry exactly one of 'record' or 'features'"
        )

    nodes = payload.get("nodes_required", 1)
    if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 1:
        raise ServeError(
            f"nodes_required must be a positive integer, got {nodes!r}"
        )

    record = None
    features = None
    if has_record:
        record = payload["record"]
        if not isinstance(record, dict) or not record:
            raise ServeError("'record' must be a non-empty object of "
                             "counter fields")
        bad_keys = [k for k in record if not isinstance(k, str)]
        if bad_keys:
            raise ServeError("'record' keys must be strings")
        uses_gpu = bool(payload.get("uses_gpu",
                                    record.get("uses_gpu", False)))
    else:
        raw = payload["features"]
        if not isinstance(raw, list) or not raw:
            raise ServeError("'features' must be a non-empty array of "
                             "numbers")
        if len(raw) > _MAX_FEATURES:
            raise ServeError(
                f"'features' has {len(raw)} entries (limit {_MAX_FEATURES})"
            )
        values = []
        for i, v in enumerate(raw):
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise ServeError(
                    f"'features'[{i}] is {type(v).__name__}, expected a "
                    "number"
                )
            values.append(float(v))
        features = tuple(values)
        uses_gpu = bool(payload.get("uses_gpu", False))
    return ParsedRequest(
        kind="record" if has_record else "features",
        record=record,
        features=features,
        nodes_required=nodes,
        uses_gpu=uses_gpu,
    )


def predict_response(
    rpv: np.ndarray,
    systems: tuple[str, ...],
    recommended: str,
    tier: str,
    model_hash: str,
    batch_size: int,
) -> dict:
    """The one ``/predict`` success shape (JSON-ready)."""
    values = [float(v) for v in np.asarray(rpv, dtype=np.float64)]
    order = np.argsort(np.asarray(values), kind="stable")
    return {
        "protocol_version": PROTOCOL_VERSION,
        "rpv": values,
        "systems": list(systems),
        "ranked": [systems[i] for i in order],
        "recommended": recommended,
        "tier": tier,
        "model_hash": model_hash,
        "batch_size": int(batch_size),
    }


def error_response(exc: ServeError) -> tuple[int, dict]:
    """Map a typed serve error to ``(status, body)``."""
    return exc.code, {
        "protocol_version": PROTOCOL_VERSION,
        "error": str(exc),
        "reason": exc.reason,
    }
