"""Wire schema for the online prediction service.

One request shape covers both deployment modes the paper implies:

* ``{"record": {...}}`` — a raw profiled run record (the output of
  :func:`repro.hatchet_lite.run_record`: canonical counter fields plus
  run metadata).  The service featurizes it with the active model's
  fitted normalizer, exactly as
  :meth:`repro.core.CrossArchPredictor.predict_record` would.
* ``{"features": [...]}`` — an already-featurized row, matching the
  active model's feature columns.  The fast path for callers that
  featurize upstream (e.g. a scheduler holding a feature cache).

Optional keys: ``nodes_required`` (placement sizing, default 1) and
``uses_gpu`` (drives the model-free heuristic tier; inferred from the
record when present).

A third, zero-shot mode rides on the same request: add ``"machines"``,
a list of inline :class:`~repro.arch.descriptor.MachineDescriptor`
objects (``MachineDescriptor.to_dict()`` shape).  The service then
scores the profile against *those* machines — seen in training or not —
via the active model's descriptor-conditioned head, and the response
carries per-machine ``scores`` (predicted ``t_machine / t_source``) and
``uncertainty`` instead of a fixed-slot RPV.

Responses always carry ``rpv`` (time ratios, canonical system order),
``systems``, ``ranked`` (fastest first), ``recommended`` (the strategy's
placement), ``tier`` (which degradation tier answered), ``model_hash``
(the config hash of the model that answered — hot-swap observability),
and ``batch_size`` (how many requests shared the micro-batch).

Correlation ids: a request may carry ``request_id`` and/or
``trace_id`` (bounded, log-safe strings); the server echoes them —
minting any that are absent — in every response, success or error, and
stamps its spans with the trace id so one id follows a request from
the caller's logs through the coalesced batch to the Chrome trace.

Every defect raises a typed :class:`~repro.errors.ServeError` carrying
an HTTP status code and a machine-readable ``reason`` slug, so the
server maps malformed input to one 400 response shape and load tests
assert on slugs instead of prose.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

import numpy as np

from repro.arch.descriptor import MachineDescriptor
from repro.errors import ConfigError, ServeError

__all__ = [
    "PROTOCOL_VERSION",
    "ParsedRequest",
    "parse_predict_payload",
    "predict_response",
    "zeroshot_response",
    "error_response",
    "mint_request_id",
    "peek_wire_ids",
]

#: Bumped whenever the request/response schema changes incompatibly.
PROTOCOL_VERSION = 1

#: Hard cap on one request's feature width; anything wider is hostile.
_MAX_FEATURES = 4096

#: Hard cap on inline descriptors per request (each one is a model
#: evaluation; a thousand-machine list is a DoS, not a placement).
_MAX_MACHINES = 64

#: Wire-supplied correlation ids: bounded, log-safe charset (no
#: whitespace, quotes, or control bytes to smuggle into logs/traces).
_ID_PATTERN = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")


def mint_request_id() -> str:
    """A fresh server-side request id (``req-`` + 12 hex chars)."""
    return "req-" + os.urandom(6).hex()


def peek_wire_ids(payload) -> "tuple[str | None, str | None]":
    """Best-effort ``(request_id, trace_id)`` extraction, never raises.

    The transport layer needs the caller's correlation ids even when the
    request is malformed (they go into the error body); a bad id simply
    reads as absent here — the strict parse in
    :func:`parse_predict_payload` still rejects the request.
    """
    if not isinstance(payload, dict):
        return None, None
    ids = []
    for key in ("request_id", "trace_id"):
        value = payload.get(key)
        ids.append(value if isinstance(value, str)
                   and _ID_PATTERN.match(value) else None)
    return ids[0], ids[1]


def _parse_wire_id(payload: dict, key: str) -> str | None:
    """The optional ``request_id``/``trace_id`` a caller supplied."""
    if key not in payload:
        return None
    value = payload[key]
    if not isinstance(value, str) or not _ID_PATTERN.match(value):
        raise ServeError(
            f"'{key}' must be 1-128 characters from [A-Za-z0-9._:-]"
        )
    return value


@dataclass(frozen=True)
class ParsedRequest:
    """One validated prediction request.

    ``kind`` is ``"record"`` or ``"features"``; exactly one of
    ``record``/``features`` is set.  ``features`` width is validated
    against the *active model* at batch time (the model can change
    between admission and flush under hot-swap), not here.
    """

    kind: str
    record: dict | None
    features: tuple[float, ...] | None
    nodes_required: int
    uses_gpu: bool
    #: Inline descriptors for zero-shot scoring; None = classic RPV mode.
    machines: tuple[MachineDescriptor, ...] | None = None
    #: Correlation ids: wire-supplied or minted by the server, echoed in
    #: every response (success and error) for end-to-end tracing.
    request_id: str | None = None
    trace_id: str | None = None
    #: The request's root span id (server-side), so batch-flush spans in
    #: other scopes can parent themselves under the request span.
    span_id: int | None = None


def parse_predict_payload(payload) -> ParsedRequest:
    """Validate one ``/predict`` body; typed :class:`ServeError` on any
    defect (the server turns these into one 400 JSON shape)."""
    if not isinstance(payload, dict):
        raise ServeError(
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    unknown = sorted(
        set(payload) - {"record", "features", "nodes_required", "uses_gpu",
                        "machines", "request_id", "trace_id"}
    )
    if unknown:
        raise ServeError(f"unknown request key(s): {', '.join(unknown)}")
    has_record = "record" in payload
    has_features = "features" in payload
    if has_record == has_features:
        raise ServeError(
            "request must carry exactly one of 'record' or 'features'"
        )

    nodes = payload.get("nodes_required", 1)
    if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 1:
        raise ServeError(
            f"nodes_required must be a positive integer, got {nodes!r}"
        )

    record = None
    features = None
    if has_record:
        record = payload["record"]
        if not isinstance(record, dict) or not record:
            raise ServeError("'record' must be a non-empty object of "
                             "counter fields")
        bad_keys = [k for k in record if not isinstance(k, str)]
        if bad_keys:
            raise ServeError("'record' keys must be strings")
        uses_gpu = bool(payload.get("uses_gpu",
                                    record.get("uses_gpu", False)))
    else:
        raw = payload["features"]
        if not isinstance(raw, list) or not raw:
            raise ServeError("'features' must be a non-empty array of "
                             "numbers")
        if len(raw) > _MAX_FEATURES:
            raise ServeError(
                f"'features' has {len(raw)} entries (limit {_MAX_FEATURES})"
            )
        values = []
        for i, v in enumerate(raw):
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise ServeError(
                    f"'features'[{i}] is {type(v).__name__}, expected a "
                    "number"
                )
            values.append(float(v))
        features = tuple(values)
        uses_gpu = bool(payload.get("uses_gpu", False))
    return ParsedRequest(
        kind="record" if has_record else "features",
        record=record,
        features=features,
        nodes_required=nodes,
        uses_gpu=uses_gpu,
        machines=_parse_machines(payload),
        request_id=_parse_wire_id(payload, "request_id"),
        trace_id=_parse_wire_id(payload, "trace_id"),
    )


def _parse_machines(payload: dict):
    """Validate the optional ``machines`` list of inline descriptors."""
    if "machines" not in payload:
        return None
    raw = payload["machines"]
    if not isinstance(raw, list) or not raw:
        raise ServeError(
            "'machines' must be a non-empty array of machine descriptors",
            reason="bad-descriptor",
        )
    if len(raw) > _MAX_MACHINES:
        raise ServeError(
            f"'machines' has {len(raw)} entries (limit {_MAX_MACHINES})",
            reason="bad-descriptor",
        )
    machines = []
    for i, entry in enumerate(raw):
        try:
            machines.append(MachineDescriptor.from_dict(entry))
        except ConfigError as exc:
            raise ServeError(
                f"'machines'[{i}]: {exc}", reason="bad-descriptor"
            ) from exc
    names = [m.name for m in machines]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ServeError(
            f"'machines' repeats name(s): {', '.join(dupes)}",
            reason="bad-descriptor",
        )
    return tuple(machines)


def predict_response(
    rpv: np.ndarray,
    systems: tuple[str, ...],
    recommended: str,
    tier: str,
    model_hash: str,
    batch_size: int,
    request_id: str | None = None,
    trace_id: str | None = None,
) -> dict:
    """The one ``/predict`` success shape (JSON-ready)."""
    values = [float(v) for v in np.asarray(rpv, dtype=np.float64)]
    order = np.argsort(np.asarray(values), kind="stable")
    out = {
        "protocol_version": PROTOCOL_VERSION,
        "rpv": values,
        "systems": list(systems),
        "ranked": [systems[i] for i in order],
        "recommended": recommended,
        "tier": tier,
        "model_hash": model_hash,
        "batch_size": int(batch_size),
    }
    if request_id is not None:
        out["request_id"] = request_id
    if trace_id is not None:
        out["trace_id"] = trace_id
    return out


def zeroshot_response(
    machines: "tuple[MachineDescriptor, ...]",
    scores: np.ndarray,
    uncertainty: np.ndarray,
    tier: str,
    model_hash: str,
    request_id: str | None = None,
    trace_id: str | None = None,
) -> dict:
    """The ``/predict`` success shape for inline-descriptor requests.

    ``scores`` are predicted ``t_machine / t_source`` ratios (lower is
    faster) in request order; ``uncertainty`` is the per-machine
    predictive spread (quantile band half-width or ensemble std), never
    null for a served zero-shot head.
    """
    names = [m.name for m in machines]
    values = [float(v) for v in np.asarray(scores, dtype=np.float64)]
    spread = [float(v) for v in np.asarray(uncertainty, dtype=np.float64)]
    order = np.argsort(np.asarray(values), kind="stable")
    ranked = [names[i] for i in order]
    out = {
        "protocol_version": PROTOCOL_VERSION,
        "machines": names,
        "scores": values,
        "uncertainty": spread,
        "ranked": ranked,
        "recommended": ranked[0],
        "tier": tier,
        "model_hash": model_hash,
    }
    if request_id is not None:
        out["request_id"] = request_id
    if trace_id is not None:
        out["trace_id"] = trace_id
    return out


def error_response(exc: ServeError) -> tuple[int, dict]:
    """Map a typed serve error to ``(status, body)``."""
    return exc.code, {
        "protocol_version": PROTOCOL_VERSION,
        "error": str(exc),
        "reason": exc.reason,
    }
