"""Admission control: bounded in-flight work with graceful shedding.

An unbounded service queues until it falls over; this controller keeps
the queue honest with two watermarks over the in-flight request count:

* below ``soft_limit``          — **full** service: the request joins a
  micro-batch and gets a model-tier prediction;
* ``soft_limit``..``hard_limit``— **degraded**: the request is answered
  immediately from the :class:`ResilientPredictor`'s model-free tiers
  (``mean_rpv`` when training stats are loaded, else ``heuristic``) —
  O(1), no queueing, honestly labeled with its tier;
* at ``hard_limit``             — **shed**: a typed 503, the caller's
  signal to back off.

Shedding *into the degradation chain* instead of straight to errors is
the serving-time continuation of the chain's design: a coarse answer
now beats a precise answer after the deadline, and the tier label keeps
the quality loss observable (``tier_snapshot`` + the
``serve.admission.*`` counters below).
"""

from __future__ import annotations

from repro import telemetry
from repro.errors import ServeError

__all__ = ["AdmissionController"]

#: Admission decisions, best first.
DECISIONS = ("full", "degraded", "shed")


class AdmissionController:
    """Watermark-based admission over an in-flight counter."""

    def __init__(self, soft_limit: int = 64, hard_limit: int = 256):
        if soft_limit < 1:
            raise ServeError(f"soft_limit must be >= 1, got {soft_limit}",
                             code=500, reason="bad-config")
        if hard_limit < soft_limit:
            raise ServeError(
                f"hard_limit ({hard_limit}) must be >= soft_limit "
                f"({soft_limit})",
                code=500, reason="bad-config",
            )
        self.soft_limit = int(soft_limit)
        self.hard_limit = int(hard_limit)
        self.inflight = 0
        self.peak_inflight = 0
        self.counts = {d: 0 for d in DECISIONS}

    # ------------------------------------------------------------------
    def decide(self) -> str:
        """Admission decision for one arriving request (and count it)."""
        if self.inflight >= self.hard_limit:
            decision = "shed"
        elif self.inflight >= self.soft_limit:
            decision = "degraded"
        else:
            decision = "full"
        self.counts[decision] += 1
        telemetry.counter(f"serve.admission.{decision}").inc()
        return decision

    def enter(self) -> None:
        """Account one admitted (full or degraded) request in-flight."""
        self.inflight += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight
        telemetry.gauge("serve.inflight").set(self.inflight)

    def exit(self) -> None:
        self.inflight -= 1
        telemetry.gauge("serve.inflight").set(self.inflight)

    # ------------------------------------------------------------------
    def shed_error(self) -> ServeError:
        return ServeError(
            f"service overloaded ({self.inflight} requests in flight, "
            f"limit {self.hard_limit}); retry with backoff",
            code=503, reason="shed",
        )

    def snapshot(self) -> dict:
        """JSON-ready admission state (``/metrics``)."""
        return {
            "inflight": self.inflight,
            "peak_inflight": self.peak_inflight,
            "soft_limit": self.soft_limit,
            "hard_limit": self.hard_limit,
            "decisions": dict(self.counts),
        }
