"""Admission control: bounded in-flight work with graceful shedding.

An unbounded service queues until it falls over; this controller keeps
the queue honest with two watermarks over the in-flight request count:

* below ``soft_limit``          — **full** service: the request joins a
  micro-batch and gets a model-tier prediction;
* ``soft_limit``..``hard_limit``— **degraded**: the request is answered
  immediately from the :class:`ResilientPredictor`'s model-free tiers
  (``mean_rpv`` when training stats are loaded, else ``heuristic``) —
  O(1), no queueing, honestly labeled with its tier;
* at ``hard_limit``             — **shed**: a typed 503, the caller's
  signal to back off.

Shedding *into the degradation chain* instead of straight to errors is
the serving-time continuation of the chain's design: a coarse answer
now beats a precise answer after the deadline, and the tier label keeps
the quality loss observable (``tier_snapshot`` + the
``serve.admission.*`` counters below).

SLO mode (default off): pass an
:class:`~repro.telemetry.slo.SLOShedPolicy` and decisions below the
hard limit come from error-budget burn instead of the soft watermark —
the service sheds when sustained latency/availability burn says the
SLO is in danger, not when a raw in-flight count happens to spike.
The hard limit stays on as the memory-safety backstop, and with no
policy installed behavior is bit-identical to the watermark
controller.
"""

from __future__ import annotations

from repro import telemetry
from repro.errors import ServeError

__all__ = ["AdmissionController"]

#: Admission decisions, best first.
DECISIONS = ("full", "degraded", "shed")


class AdmissionController:
    """Watermark-based admission over an in-flight counter."""

    def __init__(self, soft_limit: int = 64, hard_limit: int = 256,
                 slo=None):
        if soft_limit < 1:
            raise ServeError(f"soft_limit must be >= 1, got {soft_limit}",
                             code=500, reason="bad-config")
        if hard_limit < soft_limit:
            raise ServeError(
                f"hard_limit ({hard_limit}) must be >= soft_limit "
                f"({soft_limit})",
                code=500, reason="bad-config",
            )
        self.soft_limit = int(soft_limit)
        self.hard_limit = int(hard_limit)
        #: Optional SLOShedPolicy; None = pure watermark mode.
        self.slo = slo
        self.inflight = 0
        self.peak_inflight = 0
        self.counts = {d: 0 for d in DECISIONS}

    # ------------------------------------------------------------------
    def state(self) -> str:
        """The decision an arriving request would get *right now*.

        Pure read — no counters move — so error payloads can report the
        admission state without perturbing the series.
        """
        if self.inflight >= self.hard_limit:
            return "shed"
        if self.slo is not None:
            # Burn-driven below the hard backstop: shed only on
            # sustained budget burn, degrade on fast burn OR the soft
            # watermark (memory pressure still deserves a cheap tier).
            burn = self.slo.decision()
            if burn == "shed":
                return "shed"
            if burn == "degraded" or self.inflight >= self.soft_limit:
                return "degraded"
            return "full"
        if self.inflight >= self.soft_limit:
            return "degraded"
        return "full"

    def decide(self) -> str:
        """Admission decision for one arriving request (and count it)."""
        decision = self.state()
        self.counts[decision] += 1
        telemetry.counter(f"serve.admission.{decision}").inc()
        return decision

    def observe(self, latency_s: float, ok: bool = True) -> None:
        """Feed one finished request to the SLO policy (no-op without)."""
        if self.slo is not None:
            self.slo.observe(latency_s, ok)

    def enter(self) -> None:
        """Account one admitted (full or degraded) request in-flight."""
        self.inflight += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight
        telemetry.gauge("serve.inflight").set(self.inflight)

    def exit(self) -> None:
        self.inflight -= 1
        telemetry.gauge("serve.inflight").set(self.inflight)

    # ------------------------------------------------------------------
    def shed_error(self) -> ServeError:
        return ServeError(
            f"service overloaded ({self.inflight} requests in flight, "
            f"limit {self.hard_limit}); retry with backoff",
            code=503, reason="shed",
        )

    def snapshot(self) -> dict:
        """JSON-ready admission state (``/metrics``)."""
        out = {
            "inflight": self.inflight,
            "peak_inflight": self.peak_inflight,
            "soft_limit": self.soft_limit,
            "hard_limit": self.hard_limit,
            "decisions": dict(self.counts),
        }
        if self.slo is not None:
            out["slo"] = self.slo.snapshot()
        return out
