"""Online prediction + scheduling service (``repro serve``).

The deployment story the paper's Section VIII implies, made concrete:
a long-running service that answers "which machine should this job run
on" at job-submission time.  Profile/counter payloads arrive as JSON
over a local HTTP endpoint; concurrent requests coalesce into
micro-batches through the model's vectorized predict path; each
response carries the predicted RPV plus a placement recommendation
from a registered scheduling strategy.

The moving parts, one module each:

* :mod:`repro.serve.protocol` — wire schema and typed validation;
* :mod:`repro.serve.coalescer` — :class:`MicroBatcher`, flush on
  size/deadline, per-item result fan-out;
* :mod:`repro.serve.model_manager` — :class:`ModelManager`, loads
  models by config hash from a verified run-dir registry and hot-swaps
  them atomically when ``CURRENT`` changes;
* :mod:`repro.serve.admission` — :class:`AdmissionController`,
  watermark-based full/degraded/shed decisions backed by the
  resilience degradation chain;
* :mod:`repro.serve.server` — :class:`PredictionService`, the asyncio
  HTTP server tying it together;
* :mod:`repro.serve.loadgen` — deterministic payload synthesis and the
  seeded Poisson load driver used by tests and CI.

Layering: ``serve`` sits above artifacts/resilience/sched/telemetry
and below cli — it never imports ``repro.cli`` or ``repro.sweep``
(enforced by ``tools/check_layering.py``).
"""

from repro.serve.admission import AdmissionController
from repro.serve.coalescer import MicroBatcher
from repro.serve.loadgen import (
    LoadReport,
    http_request,
    run_load,
    synthesize_payloads,
)
from repro.serve.model_manager import (
    ActiveModel,
    ModelManager,
    publish_model,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ParsedRequest,
    parse_predict_payload,
    predict_response,
)
from repro.serve.server import PredictionService

__all__ = [
    "PROTOCOL_VERSION",
    "ActiveModel",
    "AdmissionController",
    "LoadReport",
    "MicroBatcher",
    "ModelManager",
    "ParsedRequest",
    "PredictionService",
    "http_request",
    "parse_predict_payload",
    "predict_response",
    "publish_model",
    "run_load",
    "synthesize_payloads",
]
