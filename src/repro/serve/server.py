"""The online prediction + placement service.

A :class:`PredictionService` answers "which machine should this job run
on" at decision time: JSON profile/counter payloads arrive over a local
HTTP endpoint, concurrent requests coalesce into micro-batches through
the active model's vectorized predict path, and each response carries
the predicted RPV plus a placement recommendation from a registered
scheduling strategy.

Request path (``POST /predict``)::

    parse -> admission -> [full]     coalesce -> batch predict -> place
                          [degraded] model-free tier answer     -> place
                          [shed]     typed 503

Batch atomicity under hot-swap: a flush captures ``manager.active``
*once* and featurizes + predicts the entire batch against that one
model; the response's ``model_hash`` names it.  A promotion landing
mid-batch affects only later batches — no request ever observes a
half-loaded model (pinned by tests/test_serve.py).

Endpoints: ``POST /predict``, ``GET /metrics`` (admission counters,
tier snapshot, coalescer state, telemetry snapshot), ``GET /healthz``,
``GET /model``.  The HTTP layer is deliberately minimal stdlib asyncio
(request line + headers + content-length body) — the service binds to
loopback for a scheduler sidecar, not the open internet.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.errors import ReproError, ServeError
from repro.serve.admission import AdmissionController
from repro.serve.coalescer import MicroBatcher
from repro.serve.model_manager import ActiveModel, ModelManager
from repro.serve.protocol import (
    ParsedRequest,
    error_response,
    parse_predict_payload,
    predict_response,
    zeroshot_response,
)

__all__ = ["PredictionService", "BatchResult"]

#: Response statuses the minimal HTTP writer knows how to phrase.
_PHRASES = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable"}


@dataclass
class BatchResult:
    """One request's share of a flushed batch."""

    rpv: np.ndarray
    tier: str
    model: ActiveModel
    batch_size: int


class PredictionService:
    """Micro-batching prediction server over a hot-swappable model."""

    def __init__(
        self,
        manager: ModelManager,
        strategy: str = "model",
        max_batch: int = 32,
        batch_deadline_s: float = 0.005,
        soft_inflight: int = 64,
        max_inflight: int = 256,
        cluster=None,
    ):
        from repro.sched.machines import ClusterState
        from repro.sched.strategies import strategy_by_name

        self.manager = manager
        self.batcher = MicroBatcher(
            self._predict_batch, max_batch=max_batch,
            max_delay_s=batch_deadline_s,
        )
        self.admission = AdmissionController(
            soft_limit=soft_inflight, hard_limit=max_inflight
        )
        self.strategy_name = strategy
        self.strategy = strategy_by_name(strategy)
        self.cluster = cluster if cluster is not None else ClusterState()
        self._job_ids = itertools.count()
        self._assign_index = 0
        self._server: asyncio.base_events.Server | None = None
        self._started = time.monotonic()
        self.address: tuple[str, int] | None = None
        #: endpoint -> request count; status -> response count.  Kept
        #: service-side (not only in telemetry) so ``/metrics`` answers
        #: even with telemetry off.
        self.request_counts: dict[str, int] = {}
        self.status_counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Batch prediction (runs inside MicroBatcher flushes)
    # ------------------------------------------------------------------
    def _predict_batch(self, items: list[ParsedRequest]) -> list:
        """Predict one coalesced batch against ONE captured model.

        Per-item results are :class:`BatchResult`; an item whose
        features cannot fit the captured model gets a
        :class:`ServeError` result (its caller alone fails).  Raw
        records with broken counters drop into the degradation chain
        individually; clean rows ride the vectorized path together.
        """
        model = self.manager.active  # the swap point: captured once
        n = len(items)
        results: list = [None] * n
        rows: list[np.ndarray] = []
        row_items: list[int] = []
        for i, item in enumerate(items):
            if item.kind == "features":
                if len(item.features) != model.n_features:
                    results[i] = ServeError(
                        f"'features' has {len(item.features)} entries; "
                        f"model {model.config_hash[:12]} expects "
                        f"{model.n_features}"
                    )
                    continue
                rows.append(np.asarray(item.features, dtype=np.float64))
                row_items.append(i)
                continue
            # Raw record: the clean path featurizes exactly like the
            # offline CrossArchPredictor.predict_record (single-record
            # frame through the fitted normalizer) so batched answers
            # are bit-identical to single-shot ones.
            try:
                rows.append(self._featurize(item.record, model))
                row_items.append(i)
            except (ReproError, ValueError, KeyError, TypeError):
                outcome = model.resilient.predict_record_detailed(
                    item.record
                )
                results[i] = BatchResult(outcome.rpv, outcome.tier,
                                         model, 1)
        if rows:
            X = np.vstack(rows)
            finite = np.isfinite(X).all(axis=1)
            Y = model.resilient.predict(X)
            fallback = (
                "imputed" if model.resilient.feature_fill is not None
                else ("mean_rpv" if model.resilient.mean_rpv is not None
                      else "heuristic")
            )
            for k, i in enumerate(row_items):
                tier = "model" if finite[k] else fallback
                results[i] = BatchResult(Y[k], tier, model, len(rows))
        return results

    @staticmethod
    def _featurize(record: dict, model: ActiveModel) -> np.ndarray:
        """One record -> one feature row, the predict_record way."""
        from repro.dataset.features import (
            REQUIRED_RECORD_FIELDS,
            derive_feature_frame,
        )
        from repro.frame import Frame

        predictor = model.predictor
        if predictor.normalizer is None:
            raise ServeError("model has no fitted normalizer", code=500,
                             reason="bad-model")
        missing = [f for f in REQUIRED_RECORD_FIELDS if f not in record]
        if missing:
            raise KeyError(f"record is missing fields: {sorted(missing)}")
        bad = [
            f for f in REQUIRED_RECORD_FIELDS
            if not np.isfinite(np.asarray(record[f], dtype=np.float64))
        ]
        if bad:
            raise ValueError(f"record has non-finite values: {sorted(bad)}")
        frame = Frame.from_records([record])
        featured, _ = derive_feature_frame(
            frame, normalizer=predictor.normalizer
        )
        return featured.to_matrix(list(predictor.feature_columns))[0]

    # ------------------------------------------------------------------
    # Zero-shot scoring (inline machine descriptors)
    # ------------------------------------------------------------------
    def _predict_zeroshot(self, request: ParsedRequest) -> dict:
        """Score one request against its inline machine descriptors.

        Captures ``manager.active`` once (same hot-swap atomicity as a
        batch flush) and routes through the descriptor-conditioned
        head.  The response ranks the *request's* machines by predicted
        ``t_machine / t_source`` and carries per-machine uncertainty.
        """
        model = self.manager.active  # the swap point: captured once
        zeroshot = model.zeroshot
        if zeroshot is None:
            raise ServeError(
                f"model {model.config_hash[:12]} has no zero-shot head; "
                f"retrain with --zeroshot to score inline machines",
                code=503, reason="no-zeroshot-model",
            )
        machines = request.machines
        try:
            if request.kind == "features":
                if len(request.features) != model.n_features:
                    raise ServeError(
                        f"'features' has {len(request.features)} entries; "
                        f"model {model.config_hash[:12]} expects "
                        f"{model.n_features}"
                    )
                row = np.asarray(request.features, dtype=np.float64)
                scores, spread = zeroshot.predict_wide_with_uncertainty(
                    row[None, :], machines
                )
                scores, spread = scores[0], spread[0]
            else:
                scores, spread = zeroshot.score_record(
                    request.record, machines
                )
        except ServeError:
            raise
        except (ReproError, ValueError, KeyError, TypeError,
                RuntimeError) as exc:
            # Unlike the RPV path there is no degradation tier to fall
            # into: a heuristic has no opinion on a machine it has
            # never seen, so a bad profile is the caller's error.
            raise ServeError(
                f"cannot score request against inline machines: {exc}"
            ) from exc
        telemetry.counter("serve.zeroshot.requests").inc()
        return zeroshot_response(
            machines, scores, spread, "zeroshot", model.config_hash
        )

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _recommend(self, request: ParsedRequest, rpv: np.ndarray,
                   model: ActiveModel) -> str:
        """Route the predicted RPV through the configured strategy."""
        from repro.sched.job import Job

        app = "request"
        if request.record is not None:
            app = str(request.record.get("app", app)) or app
        job = Job(
            job_id=next(self._job_ids),
            app=app,
            uses_gpu=request.uses_gpu,
            nodes_required=request.nodes_required,
            # RPVs are relative times: positive-clamped they double as
            # the placeholder runtimes Job validation requires.
            runtimes={
                s: max(float(v), 1e-9)
                for s, v in zip(model.systems, rpv)
            },
            predicted_rpv=np.asarray(rpv, dtype=np.float64),
        )
        try:
            choice = self.strategy.assign(job, self._assign_index,
                                          self.cluster)
            self._assign_index += 1
            return choice
        finally:
            release = getattr(self.strategy, "release", None)
            if release is not None:
                release(job.job_id)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def handle_predict(self, payload) -> dict:
        """Full ``/predict`` flow for one parsed JSON payload."""
        request = parse_predict_payload(payload)
        decision = self.admission.decide()
        if decision == "shed":
            raise self.admission.shed_error()
        self.admission.enter()
        try:
            if request.machines is not None:
                # Zero-shot scoring of inline descriptors: a rare
                # control-plane request (capacity planning, onboarding a
                # new machine), answered directly — no micro-batching,
                # and no degraded tier (there is no model-free answer
                # for machines the heuristics have never seen).
                return self._predict_zeroshot(request)
            if decision == "degraded":
                model = self.manager.active
                outcome = model.resilient.baseline(request.uses_gpu)
                rpv, tier, batch_size = outcome.rpv, outcome.tier, 1
            else:
                result = await self.batcher.submit(request)
                model = result.model
                rpv, tier, batch_size = (
                    result.rpv, result.tier, result.batch_size
                )
            recommended = self._recommend(request, rpv, model)
            return predict_response(
                rpv, model.systems, recommended, tier,
                model.config_hash, batch_size,
            )
        finally:
            self.admission.exit()

    async def _route(self, method: str, target: str,
                     body: bytes) -> tuple[int, dict]:
        target = target.split("?", 1)[0]
        endpoint = target.strip("/") or "root"
        self.request_counts[endpoint] = (
            self.request_counts.get(endpoint, 0) + 1
        )
        t0 = time.perf_counter()
        try:
            if target == "/predict":
                if method != "POST":
                    return 405, {"error": "POST required", "reason": "method"}
                try:
                    payload = json.loads(body or b"")
                except json.JSONDecodeError as exc:
                    raise ServeError(
                        f"request body is not valid JSON: {exc}"
                    ) from exc
                return 200, await self.handle_predict(payload)
            if method != "GET":
                return 405, {"error": "GET required", "reason": "method"}
            if target == "/metrics":
                return 200, self.metrics_payload()
            if target == "/healthz":
                return 200, {
                    "status": "ok" if self.manager.has_model else "no-model",
                    "model_hash": (
                        self.manager.active.config_hash
                        if self.manager.has_model else None
                    ),
                }
            if target == "/model":
                return 200, self.manager.active.describe()
            return 404, {"error": f"no such endpoint {target!r}",
                         "reason": "not-found"}
        except ServeError as exc:
            return error_response(exc)
        finally:
            if telemetry.metrics_enabled():
                telemetry.histogram(
                    f"serve.http.{endpoint}.seconds"
                ).observe(time.perf_counter() - t0)
                telemetry.counter(f"serve.http.{endpoint}.requests").inc()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics_payload(self) -> dict:
        """Everything ``/metrics`` serves (also a run-dir artifact)."""
        service = {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "requests": dict(sorted(self.request_counts.items())),
            "responses_by_status": {
                str(k): v for k, v in sorted(self.status_counts.items())
            },
            "admission": self.admission.snapshot(),
            "coalescer": {
                "pending": self.batcher.pending,
                "max_batch": self.batcher.max_batch,
                "max_delay_ms": self.batcher.max_delay_s * 1000.0,
            },
            "strategy": self.strategy_name,
        }
        if self.manager.has_model:
            active = self.manager.active
            service["model"] = active.describe()
            service["tiers"] = active.resilient.tier_snapshot().to_dict()
        else:
            service["model"] = None
            service["tiers"] = None
        payload = {"service": service}
        if telemetry.metrics_enabled():
            payload["telemetry"] = telemetry.snapshot()
        return payload

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        """Bind and serve; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock = self._server.sockets[0].getsockname()
        self.address = (sock[0], sock[1])
        return self.address

    async def stop(self, drain_timeout_s: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, flush."""
        await self.manager.stop_watching()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + drain_timeout_s
        while self.admission.inflight > 0 and time.monotonic() < deadline:
            self.batcher.flush_now()
            await asyncio.sleep(0.005)
        await self.batcher.close()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                try:
                    method, target, _version = (
                        request_line.decode("ascii").split(maxsplit=2)
                    )
                except (UnicodeDecodeError, ValueError):
                    await self._respond(
                        writer, 400,
                        {"error": "malformed request line",
                         "reason": "bad-http"},
                        close=True,
                    )
                    break
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    length = -1
                if length < 0 or length > (1 << 22):
                    await self._respond(
                        writer, 400,
                        {"error": "bad content-length", "reason": "bad-http"},
                        close=True,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._route(
                    method.upper(), target, body
                )
                close = headers.get("connection", "").lower() == "close"
                await self._respond(writer, status, payload, close=close)
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict, close: bool = False) -> None:
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_PHRASES.get(status, 'Unknown')}\r\n"
            f"content-type: application/json\r\n"
            f"content-length: {len(body)}\r\n"
            f"connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()
