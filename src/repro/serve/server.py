"""The online prediction + placement service.

A :class:`PredictionService` answers "which machine should this job run
on" at decision time: JSON profile/counter payloads arrive over a local
HTTP endpoint, concurrent requests coalesce into micro-batches through
the active model's vectorized predict path, and each response carries
the predicted RPV plus a placement recommendation from a registered
scheduling strategy.

Request path (``POST /predict``)::

    parse -> admission -> [full]     coalesce -> batch predict -> place
                          [degraded] model-free tier answer     -> place
                          [shed]     typed 503

Batch atomicity under hot-swap: a flush captures ``manager.active``
*once* and featurizes + predicts the entire batch against that one
model; the response's ``model_hash`` names it.  A promotion landing
mid-batch affects only later batches — no request ever observes a
half-loaded model (pinned by tests/test_serve.py).

Endpoints: ``POST /predict``, ``GET /metrics`` (admission counters,
tier snapshot, coalescer state, telemetry snapshot; add
``?format=prometheus`` for text exposition), ``GET /healthz``,
``GET /model``.  The HTTP layer is deliberately minimal stdlib asyncio
(request line + headers + content-length body) — the service binds to
loopback for a scheduler sidecar, not the open internet.

Observability: every request gets a ``request_id``/``trace_id`` (wire
values win, absent ones are minted) echoed in the response — success
*and* error — and stamped on the request's span tree, so one Chrome
trace shows ``serve.request`` → ``serve.coalescer.batch`` →
``serve.predict``/``serve.degrade`` as linked parent-child spans even
though the batch flush runs outside any request's call stack.  Error
bodies additionally carry the serving model hash and the live admission
state.  A flight-recorder ring captures admission transitions and batch
flushes; transitions *into* shed and unhandled server errors dump it to
``flight.json``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import json
import sys
import time
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.errors import ReproError, ServeError
from repro.serve.admission import AdmissionController
from repro.serve.coalescer import MicroBatcher
from repro.serve.model_manager import ActiveModel, ModelManager
from repro.serve.protocol import (
    ParsedRequest,
    error_response,
    mint_request_id,
    parse_predict_payload,
    peek_wire_ids,
    predict_response,
    zeroshot_response,
)
from repro.telemetry import flightrec

__all__ = ["PredictionService", "BatchResult"]

#: Response statuses the minimal HTTP writer knows how to phrase.
_PHRASES = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable"}


class _TextBody(str):
    """A plain-text response body (``_respond`` defaults to JSON)."""

    #: Prometheus text exposition format version 0.0.4.
    content_type = "text/plain; version=0.0.4; charset=utf-8"


@dataclass
class BatchResult:
    """One request's share of a flushed batch."""

    rpv: np.ndarray
    tier: str
    model: ActiveModel
    batch_size: int


class PredictionService:
    """Micro-batching prediction server over a hot-swappable model."""

    def __init__(
        self,
        manager: ModelManager,
        strategy: str = "model",
        max_batch: int = 32,
        batch_deadline_s: float = 0.005,
        soft_inflight: int = 64,
        max_inflight: int = 256,
        cluster=None,
        slo=None,
        flight_events: int = 0,
    ):
        from repro.sched.machines import ClusterState
        from repro.sched.strategies import strategy_by_name

        self.manager = manager
        self.batcher = MicroBatcher(
            self._predict_batch, max_batch=max_batch,
            max_delay_s=batch_deadline_s,
        )
        self.admission = AdmissionController(
            soft_limit=soft_inflight, hard_limit=max_inflight, slo=slo
        )
        #: Where :meth:`dump_flight` writes (set by ``repro serve`` to
        #: the run dir's ``flight.json``); None = no dumps.
        self.flight_path = None
        #: Last admission decision, for transition detection.
        self._last_decision = "full"
        if flight_events:
            flightrec.enable(flight_events)
        self.strategy_name = strategy
        self.strategy = strategy_by_name(strategy)
        self.cluster = cluster if cluster is not None else ClusterState()
        self._job_ids = itertools.count()
        self._assign_index = 0
        self._server: asyncio.base_events.Server | None = None
        self._started = time.monotonic()
        self.address: tuple[str, int] | None = None
        #: endpoint -> request count; status -> response count.  Kept
        #: service-side (not only in telemetry) so ``/metrics`` answers
        #: even with telemetry off.
        self.request_counts: dict[str, int] = {}
        self.status_counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Batch prediction (runs inside MicroBatcher flushes)
    # ------------------------------------------------------------------
    def _predict_batch(self, items: list[ParsedRequest]) -> list:
        """Predict one coalesced batch against ONE captured model.

        Per-item results are :class:`BatchResult`; an item whose
        features cannot fit the captured model gets a
        :class:`ServeError` result (its caller alone fails).  Raw
        records with broken counters drop into the degradation chain
        individually; clean rows ride the vectorized path together.
        """
        model = self.manager.active  # the swap point: captured once
        n = len(items)
        # The flush runs on the event loop, outside every request's call
        # stack, so causality is wired explicitly: one batch span, plus
        # one serve.predict span per item parented under that item's
        # serve.request span (item.span_id) in the item's own trace.
        batch_span = telemetry.start_span("serve.coalescer.batch")
        item_spans = None
        if batch_span.span_id is not None:
            batch_span.annotate(
                rows=n,
                trace_ids=sorted({item.trace_id for item in items
                                  if item.trace_id}),
            )
            item_spans = [
                telemetry.start_span(
                    "serve.predict", trace_id=item.trace_id,
                    parent_id=item.span_id, kind=item.kind,
                    batch_span_id=batch_span.span_id,
                )
                for item in items
            ]
        results: list = [None] * n
        rows: list[np.ndarray] = []
        row_items: list[int] = []
        for i, item in enumerate(items):
            if item.kind == "features":
                if len(item.features) != model.n_features:
                    results[i] = ServeError(
                        f"'features' has {len(item.features)} entries; "
                        f"model {model.config_hash[:12]} expects "
                        f"{model.n_features}"
                    )
                    continue
                rows.append(np.asarray(item.features, dtype=np.float64))
                row_items.append(i)
                continue
            # Raw record: the clean path featurizes exactly like the
            # offline CrossArchPredictor.predict_record (single-record
            # frame through the fitted normalizer) so batched answers
            # are bit-identical to single-shot ones.
            try:
                rows.append(self._featurize(item.record, model))
                row_items.append(i)
            except (ReproError, ValueError, KeyError, TypeError):
                with telemetry.start_span(
                    "serve.degrade", trace_id=item.trace_id,
                    parent_id=item.span_id,
                ) as dspan:
                    outcome = model.resilient.predict_record_detailed(
                        item.record
                    )
                    dspan.annotate(tier=outcome.tier)
                results[i] = BatchResult(outcome.rpv, outcome.tier,
                                         model, 1)
        if rows:
            X = np.vstack(rows)
            finite = np.isfinite(X).all(axis=1)
            Y = model.resilient.predict(X)
            fallback = (
                "imputed" if model.resilient.feature_fill is not None
                else ("mean_rpv" if model.resilient.mean_rpv is not None
                      else "heuristic")
            )
            for k, i in enumerate(row_items):
                tier = "model" if finite[k] else fallback
                results[i] = BatchResult(Y[k], tier, model, len(rows))
        if item_spans is not None:
            for span, result in zip(item_spans, results):
                if isinstance(result, BatchResult):
                    span.annotate(tier=result.tier)
                    span.end()
                else:
                    span.end(type(result) if result is not None else None)
            batch_span.end()
        return results

    @staticmethod
    def _featurize(record: dict, model: ActiveModel) -> np.ndarray:
        """One record -> one feature row, the predict_record way."""
        from repro.dataset.features import (
            REQUIRED_RECORD_FIELDS,
            derive_feature_frame,
        )
        from repro.frame import Frame

        predictor = model.predictor
        if predictor.normalizer is None:
            raise ServeError("model has no fitted normalizer", code=500,
                             reason="bad-model")
        missing = [f for f in REQUIRED_RECORD_FIELDS if f not in record]
        if missing:
            raise KeyError(f"record is missing fields: {sorted(missing)}")
        bad = [
            f for f in REQUIRED_RECORD_FIELDS
            if not np.isfinite(np.asarray(record[f], dtype=np.float64))
        ]
        if bad:
            raise ValueError(f"record has non-finite values: {sorted(bad)}")
        frame = Frame.from_records([record])
        featured, _ = derive_feature_frame(
            frame, normalizer=predictor.normalizer
        )
        return featured.to_matrix(list(predictor.feature_columns))[0]

    # ------------------------------------------------------------------
    # Zero-shot scoring (inline machine descriptors)
    # ------------------------------------------------------------------
    def _predict_zeroshot(self, request: ParsedRequest) -> dict:
        """Score one request against its inline machine descriptors.

        Captures ``manager.active`` once (same hot-swap atomicity as a
        batch flush) and routes through the descriptor-conditioned
        head.  The response ranks the *request's* machines by predicted
        ``t_machine / t_source`` and carries per-machine uncertainty.
        """
        model = self.manager.active  # the swap point: captured once
        zeroshot = model.zeroshot
        if zeroshot is None:
            raise ServeError(
                f"model {model.config_hash[:12]} has no zero-shot head; "
                f"retrain with --zeroshot to score inline machines",
                code=503, reason="no-zeroshot-model",
            )
        machines = request.machines
        try:
            if request.kind == "features":
                if len(request.features) != model.n_features:
                    raise ServeError(
                        f"'features' has {len(request.features)} entries; "
                        f"model {model.config_hash[:12]} expects "
                        f"{model.n_features}"
                    )
                row = np.asarray(request.features, dtype=np.float64)
                scores, spread = zeroshot.predict_wide_with_uncertainty(
                    row[None, :], machines
                )
                scores, spread = scores[0], spread[0]
            else:
                scores, spread = zeroshot.score_record(
                    request.record, machines
                )
        except ServeError:
            raise
        except (ReproError, ValueError, KeyError, TypeError,
                RuntimeError) as exc:
            # Unlike the RPV path there is no degradation tier to fall
            # into: a heuristic has no opinion on a machine it has
            # never seen, so a bad profile is the caller's error.
            raise ServeError(
                f"cannot score request against inline machines: {exc}"
            ) from exc
        telemetry.counter("serve.zeroshot.requests").inc()
        return zeroshot_response(
            machines, scores, spread, "zeroshot", model.config_hash,
            request_id=request.request_id, trace_id=request.trace_id,
        )

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _recommend(self, request: ParsedRequest, rpv: np.ndarray,
                   model: ActiveModel) -> str:
        """Route the predicted RPV through the configured strategy."""
        from repro.sched.job import Job

        app = "request"
        if request.record is not None:
            app = str(request.record.get("app", app)) or app
        job = Job(
            job_id=next(self._job_ids),
            app=app,
            uses_gpu=request.uses_gpu,
            nodes_required=request.nodes_required,
            # RPVs are relative times: positive-clamped they double as
            # the placeholder runtimes Job validation requires.
            runtimes={
                s: max(float(v), 1e-9)
                for s, v in zip(model.systems, rpv)
            },
            predicted_rpv=np.asarray(rpv, dtype=np.float64),
        )
        try:
            choice = self.strategy.assign(job, self._assign_index,
                                          self.cluster)
            self._assign_index += 1
            return choice
        finally:
            release = getattr(self.strategy, "release", None)
            if release is not None:
                release(job.job_id)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def handle_predict(self, payload, request_id: str | None = None,
                             trace_id: str | None = None) -> dict:
        """Full ``/predict`` flow for one parsed JSON payload.

        *request_id*/*trace_id* are transport-level fallbacks; ids in
        the payload win, and whatever is still missing is minted here.
        The resolved pair is echoed in the response and stamped on the
        request's ``serve.request`` span, which the coalesced batch
        parents its per-item spans under.
        """
        request = parse_predict_payload(payload)
        request_id = request.request_id or request_id or mint_request_id()
        trace_id = request.trace_id or trace_id
        if trace_id is None and telemetry.tracing_enabled():
            trace_id = (telemetry.current_trace()[0]
                        or telemetry.new_trace_id())
        span = telemetry.start_span(
            "serve.request", trace_id=trace_id, request_id=request_id,
            kind=request.kind,
        )
        request = dataclasses.replace(
            request, request_id=request_id, trace_id=trace_id,
            span_id=span.span_id,
        )
        decision = self.admission.decide()
        span.annotate(decision=decision)
        self._note_decision(decision)
        if decision == "shed":
            span.end(ServeError)
            error = self.admission.shed_error()
            error.request_id = request_id
            error.trace_id = trace_id
            raise error
        self.admission.enter()
        t0 = time.perf_counter()
        ok = False
        try:
            if request.machines is not None:
                # Zero-shot scoring of inline descriptors: a rare
                # control-plane request (capacity planning, onboarding a
                # new machine), answered directly — no micro-batching,
                # and no degraded tier (there is no model-free answer
                # for machines the heuristics have never seen).
                response = self._predict_zeroshot(request)
            elif decision == "degraded":
                model = self.manager.active
                with telemetry.start_span(
                    "serve.degrade", trace_id=trace_id,
                    parent_id=span.span_id,
                ) as dspan:
                    outcome = model.resilient.baseline(request.uses_gpu)
                    dspan.annotate(tier=outcome.tier)
                recommended = self._recommend(request, outcome.rpv, model)
                response = predict_response(
                    outcome.rpv, model.systems, recommended, outcome.tier,
                    model.config_hash, 1,
                    request_id=request_id, trace_id=trace_id,
                )
            else:
                result = await self.batcher.submit(request)
                recommended = self._recommend(
                    request, result.rpv, result.model
                )
                response = predict_response(
                    result.rpv, result.model.systems, recommended,
                    result.tier, result.model.config_hash,
                    result.batch_size,
                    request_id=request_id, trace_id=trace_id,
                )
            ok = True
            return response
        except ServeError as exc:
            # Stamp the resolved ids on the propagating error so the
            # error body names the same request the span tree does.
            exc.request_id = request_id
            exc.trace_id = trace_id
            raise
        finally:
            self.admission.exit()
            # Shed requests never get here: only *answered* requests
            # feed the SLO burn tracker (an already-shedding service
            # must not count its own 503s as budget burn).
            self.admission.observe(time.perf_counter() - t0, ok)
            span.end(None if ok else sys.exc_info()[0])

    # ------------------------------------------------------------------
    # Flight recorder
    # ------------------------------------------------------------------
    def _note_decision(self, decision: str) -> None:
        """Track admission transitions; entering shed dumps the ring.

        A transition *into* shed is exactly the moment a post-mortem
        needs the recent history, and transitions are rare by
        construction — this can never become a dump-per-request.
        """
        previous, self._last_decision = self._last_decision, decision
        if decision == previous:
            return
        flightrec.record(
            "admission-transition", previous=previous, decision=decision,
            inflight=self.admission.inflight,
        )
        if decision == "shed":
            self.dump_flight("shed-transition")

    def dump_flight(self, reason: str):
        """Write the flight ring to ``flight.json``; returns the path
        (None when no path is configured or recording is off)."""
        if self.flight_path is None or not flightrec.enabled():
            return None
        telemetry.write_json(self.flight_path, flightrec.dump(reason))
        return self.flight_path

    async def _route(self, method: str, target: str,
                     body: bytes) -> tuple[int, dict]:
        target, _, query = target.partition("?")
        endpoint = target.strip("/") or "root"
        self.request_counts[endpoint] = (
            self.request_counts.get(endpoint, 0) + 1
        )
        t0 = time.perf_counter()
        request_id = trace_id = None
        try:
            if target == "/predict":
                if method != "POST":
                    status, payload = 405, {"error": "POST required",
                                            "reason": "method"}
                else:
                    try:
                        data = json.loads(body or b"")
                    except json.JSONDecodeError as exc:
                        raise ServeError(
                            f"request body is not valid JSON: {exc}"
                        ) from exc
                    request_id, trace_id = peek_wire_ids(data)
                    status, payload = 200, await self.handle_predict(
                        data, request_id=request_id, trace_id=trace_id
                    )
            elif method != "GET":
                status, payload = 405, {"error": "GET required",
                                        "reason": "method"}
            elif target == "/metrics":
                fmt = self._metrics_format(query)
                if fmt == "prometheus":
                    status, payload = 200, self.prometheus_payload()
                elif fmt == "json":
                    status, payload = 200, self.metrics_payload()
                else:
                    raise ServeError(
                        f"unknown metrics format {fmt!r} (choose json "
                        f"or prometheus)", reason="bad-format",
                    )
            elif target == "/healthz":
                status, payload = 200, {
                    "status": "ok" if self.manager.has_model else "no-model",
                    "model_hash": (
                        self.manager.active.config_hash
                        if self.manager.has_model else None
                    ),
                }
            elif target == "/model":
                status, payload = 200, self.manager.active.describe()
            else:
                status, payload = 404, {
                    "error": f"no such endpoint {target!r}",
                    "reason": "not-found",
                }
        except ServeError as exc:
            status, payload = error_response(exc)
            request_id = getattr(exc, "request_id", None) or request_id
            trace_id = getattr(exc, "trace_id", None) or trace_id
        except Exception as exc:  # noqa: BLE001 - the 500 must not crash
            # An unhandled handler error is a server bug: record it,
            # dump the flight ring for the post-mortem, and answer a
            # typed 500 instead of tearing down the connection.
            flightrec.record("unhandled-error", endpoint=endpoint,
                             error=type(exc).__name__)
            self.dump_flight("unhandled-error")
            telemetry.counter("serve.http.unhandled").inc()
            status, payload = 500, {
                "error": f"internal error: {type(exc).__name__}",
                "reason": "internal",
            }
        finally:
            if telemetry.metrics_enabled():
                telemetry.histogram(
                    f"serve.http.{endpoint}.seconds"
                ).observe(time.perf_counter() - t0)
                telemetry.counter(f"serve.http.{endpoint}.requests").inc()
        if status >= 400 and isinstance(payload, dict):
            payload = self._with_error_context(payload, request_id,
                                               trace_id)
        return status, payload

    @staticmethod
    def _metrics_format(query: str) -> str:
        """The ``format=`` value of a ``/metrics`` query (default json)."""
        fmt = "json"
        for part in query.split("&"):
            key, _, value = part.partition("=")
            if key == "format" and value:
                fmt = value
        return fmt

    def _with_error_context(self, body: dict, request_id: str | None,
                            trace_id: str | None) -> dict:
        """Stamp correlation + state context onto an error body.

        Every 4xx/5xx carries the request id (minted when the caller
        sent none), the serving model hash, and the live admission
        state, so one error line is debuggable without a second probe.
        """
        body.setdefault("request_id", request_id or mint_request_id())
        if trace_id is not None:
            body.setdefault("trace_id", trace_id)
        body.setdefault("model_hash",
                        self.manager.active.config_hash
                        if self.manager.has_model else None)
        body.setdefault("admission", {
            "inflight": self.admission.inflight,
            "state": self.admission.state(),
        })
        return body

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics_payload(self) -> dict:
        """Everything ``/metrics`` serves (also a run-dir artifact)."""
        service = {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "requests": dict(sorted(self.request_counts.items())),
            "responses_by_status": {
                str(k): v for k, v in sorted(self.status_counts.items())
            },
            "admission": self.admission.snapshot(),
            "coalescer": {
                "pending": self.batcher.pending,
                "max_batch": self.batcher.max_batch,
                "max_delay_ms": self.batcher.max_delay_s * 1000.0,
            },
            "strategy": self.strategy_name,
        }
        if self.manager.has_model:
            active = self.manager.active
            service["model"] = active.describe()
            service["tiers"] = active.resilient.tier_snapshot().to_dict()
        else:
            service["model"] = None
            service["tiers"] = None
        payload = {"service": service}
        if telemetry.metrics_enabled():
            payload["telemetry"] = telemetry.snapshot()
        return payload

    def prometheus_payload(self) -> _TextBody:
        """The ``GET /metrics?format=prometheus`` exposition document.

        Service-side series (request/response counts, in-flight) render
        with labels so they survive even with telemetry off; when the
        registry is recording, its whole snapshot follows via
        :func:`~repro.telemetry.export.prometheus_text` — histograms
        keep their native upper-edge-inclusive ``le`` semantics.
        """
        lines = ["# TYPE repro_serve_http_requests_total counter"]
        lines += [
            telemetry.prometheus_sample(
                "repro_serve_http_requests_total",
                {"endpoint": endpoint}, count,
            )
            for endpoint, count in sorted(self.request_counts.items())
        ]
        lines.append("# TYPE repro_serve_http_responses_total counter")
        lines += [
            telemetry.prometheus_sample(
                "repro_serve_http_responses_total",
                {"status": str(status)}, count,
            )
            for status, count in sorted(self.status_counts.items())
        ]
        lines.append("# TYPE repro_serve_admission_inflight gauge")
        lines.append(telemetry.prometheus_sample(
            "repro_serve_admission_inflight", None,
            self.admission.inflight,
        ))
        text = "\n".join(lines) + "\n"
        if telemetry.metrics_enabled():
            text += telemetry.prometheus_text(telemetry.snapshot())
        return _TextBody(text)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        """Bind and serve; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock = self._server.sockets[0].getsockname()
        self.address = (sock[0], sock[1])
        return self.address

    async def stop(self, drain_timeout_s: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, flush."""
        await self.manager.stop_watching()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + drain_timeout_s
        while self.admission.inflight > 0 and time.monotonic() < deadline:
            self.batcher.flush_now()
            await asyncio.sleep(0.005)
        await self.batcher.close()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                try:
                    method, target, _version = (
                        request_line.decode("ascii").split(maxsplit=2)
                    )
                except (UnicodeDecodeError, ValueError):
                    await self._respond(
                        writer, 400,
                        self._with_error_context(
                            {"error": "malformed request line",
                             "reason": "bad-http"}, None, None,
                        ),
                        close=True,
                    )
                    break
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    length = -1
                if length < 0 or length > (1 << 22):
                    await self._respond(
                        writer, 400,
                        self._with_error_context(
                            {"error": "bad content-length",
                             "reason": "bad-http"}, None, None,
                        ),
                        close=True,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._route(
                    method.upper(), target, body
                )
                close = headers.get("connection", "").lower() == "close"
                await self._respond(writer, status, payload, close=close)
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload, close: bool = False) -> None:
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        if isinstance(payload, _TextBody):
            body = str(payload).encode()
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_PHRASES.get(status, 'Unknown')}\r\n"
            f"content-type: {content_type}\r\n"
            f"content-length: {len(body)}\r\n"
            f"connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()
