"""Request coalescing: micro-batch concurrent predictions.

:class:`FlatEnsemble`'s vectorized traversal is ~7x faster per row at
small batch sizes than per-row calls (``BENCH_sched.json``) — but only
if somebody actually hands it batches.  A :class:`MicroBatcher` is that
somebody: concurrent ``submit()`` callers park on futures while their
items accumulate, and the whole batch goes through one flush callback
when either

* the batch reaches ``max_batch`` items (flush on size), or
* the *oldest* pending item has waited ``max_delay_s`` (flush on
  deadline — the tail-latency bound; a lone request never waits longer
  than the deadline for company that is not coming).

The flush callback is synchronous (a numpy model predict, microseconds
to low milliseconds) and runs on the event loop; per-item results are
fanned back out to the callers' futures.  An item's result may itself
be an exception instance — that item's caller gets the exception, the
rest of the batch is unaffected (one bad request must never poison its
batch-mates).  If the callback *raises*, every caller in the batch gets
the failure — that is a server bug, not a request defect, and hiding it
would serve silent garbage.

Determinism for tests: the batcher never reorders — flush order is
submission order — and ``flush_now()`` forces a flush synchronously, so
batching semantics are testable without racing the wall clock.
"""

from __future__ import annotations

import asyncio
import time

from repro import telemetry
from repro.telemetry import flightrec
from repro.errors import ServeError

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce concurrent submissions into bounded, deadline-flushed
    batches.

    Parameters
    ----------
    flush_fn:
        ``flush_fn(items) -> results`` with ``len(results) ==
        len(items)``, called with each batch in submission order.  A
        result that is an ``Exception`` instance is delivered to that
        item's caller as a raised exception.
    max_batch:
        Flush as soon as this many items are pending.
    max_delay_s:
        Flush when the oldest pending item has waited this long.
    name:
        Telemetry prefix (``<name>.batch_rows`` etc.), so two batchers
        in one process keep separate series.
    """

    def __init__(
        self,
        flush_fn,
        max_batch: int = 32,
        max_delay_s: float = 0.005,
        name: str = "serve.coalescer",
    ):
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}",
                             code=500, reason="bad-config")
        if max_delay_s < 0:
            raise ServeError(
                f"max_delay_s must be >= 0, got {max_delay_s}",
                code=500, reason="bad-config",
            )
        self.flush_fn = flush_fn
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self.name = name
        self._pending: list[tuple[object, asyncio.Future]] = []
        self._timer: asyncio.TimerHandle | None = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Items waiting for the next flush."""
        return len(self._pending)

    async def submit(self, item):
        """Queue *item*; await its per-item result from the next flush."""
        if self._closed:
            raise ServeError("coalescer is closed", code=503,
                             reason="shutting-down")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((item, future))
        if len(self._pending) >= self.max_batch:
            self._flush("size")
        elif self._timer is None:
            # The deadline is armed by the batch's *first* item and
            # never re-armed by later arrivals: it bounds the oldest
            # item's wait, not the newest's.
            self._timer = loop.call_later(
                self.max_delay_s, self._flush, "deadline"
            )
        return await future

    def flush_now(self) -> int:
        """Force a flush of everything pending; returns the batch size."""
        n = len(self._pending)
        self._flush("forced")
        return n

    async def close(self) -> None:
        """Refuse new submissions and flush whatever is pending."""
        self._closed = True
        self._flush("close")

    # ------------------------------------------------------------------
    def _flush(self, trigger: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        items = [item for item, _ in batch]
        t0 = time.perf_counter()
        try:
            results = self.flush_fn(items)
        except Exception as exc:  # noqa: BLE001 - fanned out, not hidden
            telemetry.counter(f"{self.name}.flush_errors").inc()
            flightrec.record("coalescer-flush-error", batcher=self.name,
                             rows=len(items), error=type(exc).__name__)
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        flightrec.record("coalescer-flush", batcher=self.name,
                         trigger=trigger, rows=len(items))
        if telemetry.metrics_enabled():
            telemetry.histogram(f"{self.name}.batch_seconds").observe(
                time.perf_counter() - t0
            )
            telemetry.histogram(
                f"{self.name}.batch_rows", telemetry.SIZE_BUCKETS
            ).observe(len(items))
            telemetry.counter(f"{self.name}.flush.{trigger}").inc()
        if len(results) != len(batch):
            error = ServeError(
                f"flush returned {len(results)} results for "
                f"{len(batch)} items",
                code=500, reason="batch-failure",
            )
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        for (_, future), result in zip(batch, results):
            if future.done():
                continue  # caller went away (cancelled/timed out)
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)
