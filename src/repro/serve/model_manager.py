"""Model lifecycle for the prediction service: load, verify, hot-swap.

The registry is a plain run-dir root (what ``repro train --run-dir``
writes into): each finalized ``train-<confighash12>`` directory holds a
pickled :class:`~repro.core.CrossArchPredictor` plus, when the trainer
wrote one, a ``resilience.json`` with the training-set feature means
and mean RPV that arm the degradation chain's ``imputed``/``mean_rpv``
tiers.  A ``CURRENT`` file at the root names the promoted config hash.

Promotion protocol (zero dropped requests by construction):

1. the publisher finalizes a new train run dir, then atomically writes
   its config hash to ``CURRENT`` (:func:`publish_model`);
2. the manager's watcher notices the hash change, loads **and
   verifies** the new run off to the side — ``verify_run`` re-hashes
   every artifact, so a torn or tampered promotion is detected here,
   not in a request handler;
3. only after the new predictor is fully deserialized and smoke-tested
   does one reference assignment swap it in.  In-flight batches hold
   the old :class:`ActiveModel` object they captured at flush time, so
   they complete on the old model; new batches capture the new one.
   There is no moment at which a request can observe half a model.

Any failure in step 2 (missing dir, unfinalized manifest, checksum
mismatch, orphan files, a garbage pickle) increments
``serve.promote.failed`` and leaves the old model serving — the
watcher retries on the next poll, so a publisher that is *still
writing* converges once it finishes.
"""

from __future__ import annotations

import asyncio
import json
import pickle
import time
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.telemetry import flightrec
from repro.artifacts import LoadedRun, find_run, list_runs, verify_run
from repro.errors import ArtifactError, ReproError, ServeError
from repro.ioutils import atomic_write_text

__all__ = [
    "CURRENT_NAME",
    "RESILIENCE_STATS_NAME",
    "ZEROSHOT_MODEL_NAME",
    "ActiveModel",
    "ModelManager",
    "publish_model",
]

#: Registry-root file naming the promoted config hash.
CURRENT_NAME = "CURRENT"

#: Optional train-run artifact arming the degradation chain.
RESILIENCE_STATS_NAME = "resilience.json"

#: Optional train-run artifact (``repro train --zeroshot``): the
#: descriptor-conditioned predictor that scores machines the RPV model
#: has no slot for.  Loaded alongside the main predictor when present.
ZEROSHOT_MODEL_NAME = "zeroshot.pkl"


def publish_model(registry_root: str | Path, config_hash: str) -> Path:
    """Atomically promote *config_hash* in the registry (write CURRENT).

    The write is temp+fsync+rename, so a watcher reads either the old
    hash or the new one — never a torn line.
    """
    root = Path(registry_root)
    root.mkdir(parents=True, exist_ok=True)
    return atomic_write_text(root / CURRENT_NAME,
                             str(config_hash).strip() + "\n")


class ActiveModel:
    """One fully-loaded, immutable-by-convention serving model.

    Everything a batch needs is captured here so a flush never reads
    mutable manager state: the predictor, the armed degradation chain,
    and the identity (config hash) stamped into every response.
    """

    def __init__(self, predictor, resilient, run: LoadedRun,
                 zeroshot=None):
        self.predictor = predictor
        self.resilient = resilient
        self.run = run
        #: Descriptor-conditioned head for inline-machine requests, or
        #: None when the train run carried no zeroshot.pkl.
        self.zeroshot = zeroshot
        self.config_hash: str = run.config_hash
        self.loaded_at: float = time.monotonic()

    @property
    def systems(self) -> tuple[str, ...]:
        return tuple(self.predictor.systems)

    @property
    def n_features(self) -> int:
        return len(self.predictor.feature_columns)

    def describe(self) -> dict:
        """JSON-ready identity block (``/model`` and ``/metrics``)."""
        return {
            "config_hash": self.config_hash,
            "run_dir": str(self.run.path),
            "model": self.predictor.kind,
            "n_features": self.n_features,
            "systems": list(self.systems),
            "degradation_armed": self.resilient.mean_rpv is not None,
            "zeroshot": self.zeroshot is not None,
            "uptime_seconds": round(time.monotonic() - self.loaded_at, 3),
        }


class ModelManager:
    """Loads models by config hash and hot-swaps them atomically."""

    def __init__(self, registry_root: str | Path, poll_interval_s: float = 0.2):
        self.registry_root = Path(registry_root)
        self.poll_interval_s = float(poll_interval_s)
        self._active: ActiveModel | None = None
        self._watch_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    @property
    def active(self) -> ActiveModel:
        """The serving model (raises until the first load succeeds)."""
        model = self._active
        if model is None:
            raise ServeError("no model loaded", code=503, reason="no-model")
        return model

    @property
    def has_model(self) -> bool:
        return self._active is not None

    # ------------------------------------------------------------------
    def current_hash(self) -> str | None:
        """The hash named by CURRENT, or None (missing/empty file)."""
        path = self.registry_root / CURRENT_NAME
        try:
            text = path.read_text().strip()
        except OSError:
            return None
        return text or None

    def resolve_hash(self, explicit: str | None = None) -> str:
        """The config hash to serve: explicit > CURRENT > the single
        finalized train run in the registry."""
        if explicit:
            return explicit
        published = self.current_hash()
        if published:
            return published
        runs = list_runs(self.registry_root, command="train")
        if len(runs) == 1:
            return runs[0].config_hash
        if not runs:
            raise ServeError(
                f"no finalized train runs under {self.registry_root} and "
                f"no {CURRENT_NAME} file; train with --run-dir first",
                code=503, reason="no-model",
            )
        raise ServeError(
            f"{len(runs)} train runs under {self.registry_root} but no "
            f"{CURRENT_NAME} file; publish one hash or pass --model-hash",
            code=503, reason="ambiguous-model",
        )

    # ------------------------------------------------------------------
    def load_model(self, config_hash: str) -> ActiveModel:
        """Load + verify the run for *config_hash*; typed errors only.

        The run directory is re-hashed end to end (``verify_run``)
        before a byte of it is trusted, so a torn promotion — partial
        copy, truncated manifest, bit rot — fails *here* and the caller
        keeps whatever model it already had.
        """
        run = find_run(self.registry_root, config_hash, command="train")
        verify_run(run.path)
        pickles = [name for name in run.files()
                   if name.endswith(".pkl") and name != ZEROSHOT_MODEL_NAME]
        if len(pickles) != 1:
            raise ArtifactError(
                f"{run.path}: expected exactly one .pkl predictor "
                f"artifact, found {pickles or 'none'}"
            )
        from repro.core.predictor import CrossArchPredictor

        try:
            predictor = CrossArchPredictor.load(run.path / pickles[0])
        except (pickle.UnpicklingError, EOFError, AttributeError,
                TypeError, ValueError) as exc:
            raise ArtifactError(
                f"{run.path}: cannot deserialize {pickles[0]}: {exc}"
            ) from exc
        resilient = self._build_resilient(predictor, run)
        # Smoke test before anyone can route to it: a predictor that
        # cannot answer a zero vector must never be promoted.
        probe = resilient.predict(np.zeros((1, len(predictor.feature_columns))))
        if probe.shape != (1, len(predictor.systems)):
            raise ArtifactError(
                f"{run.path}: predictor probe returned shape {probe.shape}"
            )
        zeroshot = self._load_zeroshot(run)
        return ActiveModel(predictor, resilient, run, zeroshot=zeroshot)

    @staticmethod
    def _load_zeroshot(run: LoadedRun):
        """Load + smoke-test the optional descriptor-conditioned head.

        A zeroshot.pkl that deserializes into garbage or cannot answer
        a probe row *with uncertainty* fails promotion here — serving a
        zero-shot head that returns null uncertainty would defeat the
        risk-aware scheduling it exists for.
        """
        if ZEROSHOT_MODEL_NAME not in run.files():
            return None
        from repro.arch.descriptor import descriptor_from_spec
        from repro.arch.machines import MACHINES, SYSTEM_ORDER
        from repro.core.zeroshot import DescriptorConditionedPredictor
        from repro.dataset.schema import COUNTER_FEATURES, FEATURE_COLUMNS

        try:
            zeroshot = DescriptorConditionedPredictor.load(
                run.path / ZEROSHOT_MODEL_NAME
            )
        except (pickle.UnpicklingError, EOFError, AttributeError,
                TypeError, ValueError) as exc:
            raise ArtifactError(
                f"{run.path}: cannot deserialize {ZEROSHOT_MODEL_NAME}: "
                f"{exc}"
            ) from exc
        probe_row = np.zeros((1, len(FEATURE_COLUMNS)))
        probe_row[0, len(COUNTER_FEATURES)] = 1.0  # one-hot a source
        probe_desc = descriptor_from_spec(MACHINES[SYSTEM_ORDER[0]])
        try:
            scores, spread = zeroshot.predict_wide_with_uncertainty(
                probe_row, [probe_desc]
            )
        except TypeError as exc:
            raise ArtifactError(
                f"{run.path}: {ZEROSHOT_MODEL_NAME} has no uncertainty "
                f"estimate: {exc}"
            ) from exc
        if scores.shape != (1, 1) or spread.shape != (1, 1):
            raise ArtifactError(
                f"{run.path}: zero-shot probe returned shapes "
                f"{scores.shape}/{spread.shape}"
            )
        return zeroshot

    @staticmethod
    def _build_resilient(predictor, run: LoadedRun):
        from repro.resilience.degrade import ResilientPredictor

        stats_path = run.path / RESILIENCE_STATS_NAME
        if RESILIENCE_STATS_NAME in run.files() and stats_path.is_file():
            stats = json.loads(stats_path.read_text())
            return ResilientPredictor(
                predictor=predictor,
                feature_fill=np.asarray(stats["feature_fill"],
                                        dtype=np.float64),
                mean_rpv=np.asarray(stats["mean_rpv"], dtype=np.float64),
            )
        # No training stats in the run: the chain still never fails,
        # but its model-free tier is the coarse heuristic.
        return ResilientPredictor(predictor=predictor)

    # ------------------------------------------------------------------
    def promote(self, config_hash: str) -> bool:
        """Try to make *config_hash* the serving model.

        Returns True on success.  On any typed failure the old model
        stays live, ``serve.promote.failed`` is incremented, and the
        error is swallowed *only if* a model is already serving — the
        very first load has nothing to fall back to and raises.
        """
        active = self._active
        if active is not None and active.config_hash.startswith(
            str(config_hash).strip()
        ):
            return True
        try:
            fresh = self.load_model(config_hash)
        except (ReproError, OSError) as exc:
            telemetry.counter("serve.promote.failed").inc()
            flightrec.record("promote-failed", config_hash=str(config_hash),
                             error=type(exc).__name__)
            if active is None:
                raise ServeError(
                    f"cannot load model {config_hash!r}: {exc}",
                    code=503, reason="no-model",
                ) from exc
            return False
        # The swap: one reference assignment.  Batches that captured
        # the old ActiveModel finish on it; nothing is torn down.
        self._active = fresh
        telemetry.counter("serve.promote.ok").inc()
        telemetry.gauge("serve.model.loaded_at").set(fresh.loaded_at)
        flightrec.record(
            "model-swap", config_hash=fresh.config_hash,
            previous=active.config_hash if active is not None else None,
        )
        return True

    # ------------------------------------------------------------------
    async def watch(self) -> None:
        """Poll CURRENT and promote on change (run as an asyncio task).

        A hash that fails to load is retried every poll — the publisher
        may still be finalizing the run dir — and the old model serves
        throughout.
        """
        while True:
            await asyncio.sleep(self.poll_interval_s)
            self.check_registry()

    def check_registry(self) -> bool:
        """One watcher step, callable synchronously from tests: promote
        if CURRENT names a hash other than the serving model's."""
        published = self.current_hash()
        if published is None:
            return False
        active = self._active
        if active is not None and active.config_hash.startswith(published):
            return False
        return self.promote(published)

    def start_watching(self) -> None:
        if self._watch_task is None:
            self._watch_task = asyncio.get_running_loop().create_task(
                self.watch()
            )

    async def stop_watching(self) -> None:
        task, self._watch_task = self._watch_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
