"""Deterministic load generation for the prediction service.

The scheduler simulation's arrival process doubles as the service's
load generator: request arrival times come from
:func:`repro.workloads.poisson_arrivals` and request payloads from the
same profiler pipeline that builds the MP-HPC dataset (``profile_run``
-> ``run_record``), all under one seed.  Two runs with the same seed
send byte-identical payloads at identical offsets — so load-test
assertions (goodput, shed counts, tier mix) are reproducible instead of
flaky.

Defect injection is deterministic too: ``degraded_fraction`` strips a
required counter field from evenly-spaced payloads (the service answers
those from the degradation chain, HTTP 200 with a non-``model`` tier),
and ``malformed_fraction`` mangles the request schema itself (the
service rejects those with a typed 400).

:func:`http_request` is the one tiny HTTP client used by the CLI
self-test and the CI smoke job — stdlib asyncio streams, one request
per connection, JSON in/out.  The load driver itself uses
:class:`HttpSession` — a persistent keep-alive connection with
content-length response framing — across a fixed pool, so sustained
load measures the service, not per-request TCP setup (the old
connection-per-request driver put handshake queueing in the p99).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "HttpSession",
    "LoadReport",
    "http_request",
    "run_load",
    "synthesize_payloads",
]

#: Required counter fields stripped (round-robin) from payloads marked
#: degraded — their absence drops a record into the degradation chain.
_STRIPPABLE = ("total_instructions", "branch", "l2_load_miss")


def synthesize_payloads(
    n: int,
    seed: int = 0,
    degraded_fraction: float = 0.0,
    malformed_fraction: float = 0.0,
    apps: tuple[str, ...] | None = None,
    machines: tuple[str, ...] | None = None,
    scale: str = "1node",
) -> list[dict]:
    """*n* seeded ``/predict`` payloads from the profiler pipeline.

    Each payload profiles a seeded (app, machine) draw and wraps the
    resulting run record; ``nodes_required`` is a seeded small integer
    so placement exercises real node accounting.  Defective payloads
    land at seeded-permutation indices — ``round(n * fraction)`` of
    each kind exactly, not a coin flip per payload — so load-test
    assertions on the defect mix are equalities.
    """
    from repro.apps import APPLICATIONS, generate_inputs, get_app
    from repro.arch import SYSTEM_ORDER, get_machine
    from repro.hatchet_lite import run_record
    from repro.perfsim.config import make_run_config
    from repro.profiler import profile_run

    if n < 1:
        raise ValueError(f"need n >= 1 payloads, got {n}")
    if not 0.0 <= degraded_fraction + malformed_fraction <= 1.0:
        raise ValueError("defect fractions must sum into [0, 1]")
    app_names = tuple(apps) if apps else tuple(APPLICATIONS)
    machine_names = tuple(machines) if machines else SYSTEM_ORDER
    rng = np.random.default_rng(seed)
    n_degraded = int(round(n * degraded_fraction))
    n_malformed = int(round(n * malformed_fraction))
    shuffled = rng.permutation(n)
    degraded_at = set(shuffled[:n_degraded].tolist())
    malformed_at = set(
        shuffled[n_degraded:n_degraded + n_malformed].tolist()
    )

    payloads: list[dict] = []
    for i in range(n):
        app = get_app(app_names[int(rng.integers(len(app_names)))])
        machine = get_machine(
            machine_names[int(rng.integers(len(machine_names)))]
        )
        inp = generate_inputs(app, 1, seed=seed + i)[0]
        profile = profile_run(app, inp, machine,
                              make_run_config(app, machine, scale),
                              seed=seed + i)
        record = run_record(profile)
        payload: dict = {
            "record": record,
            "nodes_required": int(rng.integers(1, 5)),
        }
        if i in degraded_at:
            victim = _STRIPPABLE[i % len(_STRIPPABLE)]
            payload["record"] = {
                k: v for k, v in record.items() if k != victim
            }
        elif i in malformed_at:
            # Three rotating schema defects, all typed-400 material.
            defect = i % 3
            if defect == 0:
                payload = {"record": record, "features": [1.0]}
            elif defect == 1:
                payload = {"record": record, "nodes_required": 0}
            else:
                payload = {"features": ["not-a-number"]}
        payloads.append(payload)
    return payloads


# ----------------------------------------------------------------------
# Minimal HTTP client (stdlib asyncio streams)
# ----------------------------------------------------------------------
async def http_request(
    host: str,
    port: int,
    method: str = "GET",
    target: str = "/healthz",
    payload: dict | None = None,
    timeout_s: float = 30.0,
) -> tuple[int, dict]:
    """One JSON HTTP exchange; returns ``(status, body)``."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout_s
    )
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"host: {host}:{port}\r\n"
            f"content-type: application/json\r\n"
            f"content-length: {len(body)}\r\n"
            f"connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    head_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    status_line = head_blob.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split()[1])
    return status, json.loads(body_blob.decode())


class HttpSession:
    """A persistent keep-alive HTTP connection (stdlib asyncio streams).

    One in-flight request at a time (requests on a connection are
    sequential by construction); responses are framed by their
    ``content-length`` header so the connection survives the exchange.
    A dropped connection — server restart, error-path close — is
    re-opened transparently on the next request.  Close with
    :meth:`aclose`.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.connects = 0
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _ensure_connected(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                self.timeout_s,
            )
            self.connects += 1

    async def _close_transport(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        self._reader = None
        self._writer = None

    async def request(
        self,
        method: str = "GET",
        target: str = "/healthz",
        payload: dict | None = None,
    ) -> tuple[int, dict]:
        """One JSON exchange on the persistent connection."""
        await self._ensure_connected()
        assert self._reader is not None and self._writer is not None
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"host: {self.host}:{self.port}\r\n"
            f"content-type: application/json\r\n"
            f"content-length: {len(body)}\r\n\r\n"
        ).encode("ascii")
        try:
            self._writer.write(head + body)
            await self._writer.drain()
            status_line = await asyncio.wait_for(
                self._reader.readline(), self.timeout_s
            )
            if not status_line:
                raise ConnectionResetError("server closed the connection")
            status = int(status_line.split()[1])
            length = 0
            close_after = False
            while True:
                line = await asyncio.wait_for(
                    self._reader.readline(), self.timeout_s
                )
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                name = name.strip().lower()
                if name == "content-length":
                    length = int(value.strip())
                elif name == "connection" and value.strip().lower() == "close":
                    close_after = True
            raw = await asyncio.wait_for(
                self._reader.readexactly(length), self.timeout_s
            ) if length else b""
        except BaseException:
            # Leave no half-read response behind: the next request gets
            # a fresh connection instead of desynchronized framing.
            await self._close_transport()
            raise
        if close_after:
            await self._close_transport()
        return status, json.loads(raw.decode()) if raw else {}

    async def aclose(self) -> None:
        await self._close_transport()


# ----------------------------------------------------------------------
# Load driver
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """Outcome of one load run, JSON-ready via :meth:`to_dict`."""

    sent: int = 0
    ok: int = 0
    shed: int = 0
    rejected: int = 0
    failed: int = 0
    tiers: dict = field(default_factory=dict)
    statuses: dict = field(default_factory=dict)
    latencies_s: list = field(default_factory=list)
    duration_s: float = 0.0
    #: Pool size and actual TCP connects (reconnects show up as
    #: ``connects > connections``).
    connections: int = 0
    connects: int = 0

    def observe(self, status: int, body: dict, latency_s: float) -> None:
        self.sent += 1
        self.latencies_s.append(latency_s)
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if status == 200:
            self.ok += 1
            tier = body.get("tier", "unknown")
            self.tiers[tier] = self.tiers.get(tier, 0) + 1
        elif status == 503 and body.get("reason") == "shed":
            self.shed += 1
        elif status == 400:
            self.rejected += 1
        else:
            self.failed += 1

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q) * 1e3)

    @property
    def goodput_per_sec(self) -> float:
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def requests_per_sec(self) -> float:
        return self.sent / self.duration_s if self.duration_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "sent": self.sent,
            "ok": self.ok,
            "shed": self.shed,
            "rejected": self.rejected,
            "failed": self.failed,
            "tiers": dict(sorted(self.tiers.items())),
            "statuses": {str(k): v
                         for k, v in sorted(self.statuses.items())},
            "duration_s": round(self.duration_s, 4),
            "connections": self.connections,
            "connects": self.connects,
            "requests_per_sec": round(self.requests_per_sec, 2),
            "goodput_per_sec": round(self.goodput_per_sec, 2),
            "latency_ms": {
                "p50": round(self.percentile_ms(50), 3),
                "p99": round(self.percentile_ms(99), 3),
                "max": round(self.percentile_ms(100), 3),
            },
        }


async def run_load(
    host: str,
    port: int,
    payloads: list[dict],
    rate_per_second: float = 0.0,
    seed: int = 0,
    timeout_s: float = 30.0,
    connections: int = 8,
) -> LoadReport:
    """Fire *payloads* at the service and aggregate a report.

    With a positive *rate_per_second*, request *i* launches at the
    ``i``-th seeded Poisson arrival offset (the scheduler simulation's
    arrival process).  With rate 0, everything launches as fast as the
    pool allows — the overload shape that drives admission into
    degraded/shed territory.

    Requests are driven through a pool of *connections* persistent
    keep-alive sessions (payload *i* rides session ``i % connections``,
    a deterministic assignment).  Reusing connections keeps TCP/accept
    setup out of the measured latencies; it also bounds concurrent
    in-flight requests at the pool size, the way real clients behave.
    A session that falls behind its arrival offsets fires back-to-back
    until it catches up (closed-loop per connection).
    """
    from repro.workloads import poisson_arrivals

    if connections < 1:
        raise ValueError(f"need connections >= 1, got {connections}")
    if rate_per_second > 0:
        offsets = poisson_arrivals(len(payloads), rate_per_second,
                                   seed=seed)
    else:
        offsets = np.zeros(len(payloads))
    report = LoadReport()
    t_start = time.perf_counter()

    async def _drive(session: HttpSession, assigned) -> None:
        for payload, offset in assigned:
            delay = offset - (time.perf_counter() - t_start)
            if delay > 0:
                await asyncio.sleep(delay)
            t0 = time.perf_counter()
            try:
                status, body = await session.request(
                    "POST", "/predict", payload
                )
            except (OSError, asyncio.TimeoutError, ValueError,
                    json.JSONDecodeError, asyncio.IncompleteReadError):
                report.sent += 1
                report.failed += 1
                continue
            report.observe(status, body, time.perf_counter() - t0)

    pool = [HttpSession(host, port, timeout_s)
            for _ in range(min(connections, max(1, len(payloads))))]
    shards = [[] for _ in pool]
    for i, payload in enumerate(payloads):
        shards[i % len(pool)].append((payload, float(offsets[i])))
    try:
        await asyncio.gather(*(
            _drive(session, shard)
            for session, shard in zip(pool, shards)
        ))
    finally:
        for session in pool:
            await session.aclose()
    report.duration_s = time.perf_counter() - t_start
    report.connections = len(pool)
    report.connects = sum(s.connects for s in pool)
    return report
