"""Deterministic load generation for the prediction service.

The scheduler simulation's arrival process doubles as the service's
load generator: request arrival times come from
:func:`repro.workloads.poisson_arrivals` and request payloads from the
same profiler pipeline that builds the MP-HPC dataset (``profile_run``
-> ``run_record``), all under one seed.  Two runs with the same seed
send byte-identical payloads at identical offsets — so load-test
assertions (goodput, shed counts, tier mix) are reproducible instead of
flaky.

Defect injection is deterministic too: ``degraded_fraction`` strips a
required counter field from evenly-spaced payloads (the service answers
those from the degradation chain, HTTP 200 with a non-``model`` tier),
and ``malformed_fraction`` mangles the request schema itself (the
service rejects those with a typed 400).

:func:`http_request` is the one tiny HTTP client used by the load
driver, the CLI self-test, and the CI smoke job — stdlib asyncio
streams, one request per connection, JSON in/out.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "LoadReport",
    "http_request",
    "run_load",
    "synthesize_payloads",
]

#: Required counter fields stripped (round-robin) from payloads marked
#: degraded — their absence drops a record into the degradation chain.
_STRIPPABLE = ("total_instructions", "branch", "l2_load_miss")


def synthesize_payloads(
    n: int,
    seed: int = 0,
    degraded_fraction: float = 0.0,
    malformed_fraction: float = 0.0,
    apps: tuple[str, ...] | None = None,
    machines: tuple[str, ...] | None = None,
    scale: str = "1node",
) -> list[dict]:
    """*n* seeded ``/predict`` payloads from the profiler pipeline.

    Each payload profiles a seeded (app, machine) draw and wraps the
    resulting run record; ``nodes_required`` is a seeded small integer
    so placement exercises real node accounting.  Defective payloads
    land at seeded-permutation indices — ``round(n * fraction)`` of
    each kind exactly, not a coin flip per payload — so load-test
    assertions on the defect mix are equalities.
    """
    from repro.apps import APPLICATIONS, generate_inputs, get_app
    from repro.arch import SYSTEM_ORDER, get_machine
    from repro.hatchet_lite import run_record
    from repro.perfsim.config import make_run_config
    from repro.profiler import profile_run

    if n < 1:
        raise ValueError(f"need n >= 1 payloads, got {n}")
    if not 0.0 <= degraded_fraction + malformed_fraction <= 1.0:
        raise ValueError("defect fractions must sum into [0, 1]")
    app_names = tuple(apps) if apps else tuple(APPLICATIONS)
    machine_names = tuple(machines) if machines else SYSTEM_ORDER
    rng = np.random.default_rng(seed)
    n_degraded = int(round(n * degraded_fraction))
    n_malformed = int(round(n * malformed_fraction))
    shuffled = rng.permutation(n)
    degraded_at = set(shuffled[:n_degraded].tolist())
    malformed_at = set(
        shuffled[n_degraded:n_degraded + n_malformed].tolist()
    )

    payloads: list[dict] = []
    for i in range(n):
        app = get_app(app_names[int(rng.integers(len(app_names)))])
        machine = get_machine(
            machine_names[int(rng.integers(len(machine_names)))]
        )
        inp = generate_inputs(app, 1, seed=seed + i)[0]
        profile = profile_run(app, inp, machine,
                              make_run_config(app, machine, scale),
                              seed=seed + i)
        record = run_record(profile)
        payload: dict = {
            "record": record,
            "nodes_required": int(rng.integers(1, 5)),
        }
        if i in degraded_at:
            victim = _STRIPPABLE[i % len(_STRIPPABLE)]
            payload["record"] = {
                k: v for k, v in record.items() if k != victim
            }
        elif i in malformed_at:
            # Three rotating schema defects, all typed-400 material.
            defect = i % 3
            if defect == 0:
                payload = {"record": record, "features": [1.0]}
            elif defect == 1:
                payload = {"record": record, "nodes_required": 0}
            else:
                payload = {"features": ["not-a-number"]}
        payloads.append(payload)
    return payloads


# ----------------------------------------------------------------------
# Minimal HTTP client (stdlib asyncio streams)
# ----------------------------------------------------------------------
async def http_request(
    host: str,
    port: int,
    method: str = "GET",
    target: str = "/healthz",
    payload: dict | None = None,
    timeout_s: float = 30.0,
) -> tuple[int, dict]:
    """One JSON HTTP exchange; returns ``(status, body)``."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout_s
    )
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"host: {host}:{port}\r\n"
            f"content-type: application/json\r\n"
            f"content-length: {len(body)}\r\n"
            f"connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    head_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    status_line = head_blob.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split()[1])
    return status, json.loads(body_blob.decode())


# ----------------------------------------------------------------------
# Load driver
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """Outcome of one load run, JSON-ready via :meth:`to_dict`."""

    sent: int = 0
    ok: int = 0
    shed: int = 0
    rejected: int = 0
    failed: int = 0
    tiers: dict = field(default_factory=dict)
    statuses: dict = field(default_factory=dict)
    latencies_s: list = field(default_factory=list)
    duration_s: float = 0.0

    def observe(self, status: int, body: dict, latency_s: float) -> None:
        self.sent += 1
        self.latencies_s.append(latency_s)
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if status == 200:
            self.ok += 1
            tier = body.get("tier", "unknown")
            self.tiers[tier] = self.tiers.get(tier, 0) + 1
        elif status == 503 and body.get("reason") == "shed":
            self.shed += 1
        elif status == 400:
            self.rejected += 1
        else:
            self.failed += 1

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q) * 1e3)

    @property
    def goodput_per_sec(self) -> float:
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def requests_per_sec(self) -> float:
        return self.sent / self.duration_s if self.duration_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "sent": self.sent,
            "ok": self.ok,
            "shed": self.shed,
            "rejected": self.rejected,
            "failed": self.failed,
            "tiers": dict(sorted(self.tiers.items())),
            "statuses": {str(k): v
                         for k, v in sorted(self.statuses.items())},
            "duration_s": round(self.duration_s, 4),
            "requests_per_sec": round(self.requests_per_sec, 2),
            "goodput_per_sec": round(self.goodput_per_sec, 2),
            "latency_ms": {
                "p50": round(self.percentile_ms(50), 3),
                "p99": round(self.percentile_ms(99), 3),
                "max": round(self.percentile_ms(100), 3),
            },
        }


async def run_load(
    host: str,
    port: int,
    payloads: list[dict],
    rate_per_second: float = 0.0,
    seed: int = 0,
    timeout_s: float = 30.0,
) -> LoadReport:
    """Fire *payloads* at the service and aggregate a report.

    With a positive *rate_per_second*, request *i* launches at the
    ``i``-th seeded Poisson arrival offset (the scheduler simulation's
    arrival process).  With rate 0, everything launches at once — the
    overload shape that drives admission into degraded/shed territory.
    """
    from repro.workloads import poisson_arrivals

    if rate_per_second > 0:
        offsets = poisson_arrivals(len(payloads), rate_per_second,
                                   seed=seed)
    else:
        offsets = np.zeros(len(payloads))
    report = LoadReport()

    async def _one(payload: dict, delay: float) -> None:
        await asyncio.sleep(delay)
        t0 = time.perf_counter()
        try:
            status, body = await http_request(
                host, port, "POST", "/predict", payload,
                timeout_s=timeout_s,
            )
        except (OSError, asyncio.TimeoutError, ValueError,
                json.JSONDecodeError):
            report.sent += 1
            report.failed += 1
            return
        report.observe(status, body, time.perf_counter() - t0)

    t_start = time.perf_counter()
    await asyncio.gather(*(
        _one(payload, float(offsets[i]))
        for i, payload in enumerate(payloads)
    ))
    report.duration_s = time.perf_counter() - t_start
    return report
