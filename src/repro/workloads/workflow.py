"""Workflow (task-DAG) scheduling with cross-architecture placement.

The paper's motivation (Section I) is *workflows*: "sets of
computational tasks and dependencies between them ... different tasks
or jobs might be better suited for different hardware architectures."
Its evaluation schedules independent jobs; this module completes the
motivating story by modeling workflows as DAGs (via networkx) whose
tasks each carry per-system runtimes, and by placing each task on a
machine with either a blind or an RPV-model-guided policy.

The executor is a list scheduler: tasks become ready when all
predecessors finish; ready tasks start immediately on their chosen
machine if it has a free node (machines here are small dedicated
allocations).  ``workflow_makespan`` returns the end-to-end time, and
``critical_path_lower_bound`` the best possible time given per-task
best-case runtimes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.arch.machines import SYSTEM_ORDER

__all__ = [
    "WorkflowTask",
    "Workflow",
    "make_pipeline_workflow",
    "make_ensemble_workflow",
    "WorkflowSchedule",
    "schedule_workflow",
    "critical_path_lower_bound",
]


@dataclass(frozen=True)
class WorkflowTask:
    """One workflow task with per-system runtimes.

    ``rpv`` (predicted time ratios, canonical system order) guides the
    model-based placement; ``runtimes`` are ground truth.
    """

    name: str
    runtimes: dict[str, float]
    rpv: np.ndarray | None = None

    def __post_init__(self) -> None:
        if not self.runtimes:
            raise ValueError(f"task {self.name}: empty runtimes")
        for system, t in self.runtimes.items():
            if t <= 0:
                raise ValueError(f"task {self.name}: bad runtime on {system}")


class Workflow:
    """A DAG of named tasks."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()

    def add_task(self, task: WorkflowTask,
                 after: list[str] | None = None) -> None:
        if task.name in self.graph:
            raise ValueError(f"duplicate task {task.name!r}")
        self.graph.add_node(task.name, task=task)
        for dep in after or []:
            if dep not in self.graph:
                raise KeyError(f"unknown dependency {dep!r}")
            self.graph.add_edge(dep, task.name)
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_node(task.name)
            raise ValueError(f"adding {task.name!r} creates a cycle")

    def task(self, name: str) -> WorkflowTask:
        return self.graph.nodes[name]["task"]

    @property
    def tasks(self) -> list[WorkflowTask]:
        return [self.graph.nodes[n]["task"]
                for n in nx.topological_sort(self.graph)]

    def __len__(self) -> int:
        return self.graph.number_of_nodes()


def make_pipeline_workflow(
    stages: list[WorkflowTask],
) -> Workflow:
    """A linear pipeline: stage i depends on stage i-1."""
    wf = Workflow()
    prev: str | None = None
    for task in stages:
        wf.add_task(task, after=[prev] if prev else None)
        prev = task.name
    return wf


def make_ensemble_workflow(
    setup: WorkflowTask,
    members: list[WorkflowTask],
    analysis: WorkflowTask,
) -> Workflow:
    """Fan-out/fan-in: setup -> N parallel members -> analysis.

    The canonical UQ-ensemble shape the paper's introduction describes
    (simulation ensembles followed by analysis/ML stages).
    """
    wf = Workflow()
    wf.add_task(setup)
    for member in members:
        wf.add_task(member, after=[setup.name])
    wf.add_task(analysis, after=[m.name for m in members])
    return wf


@dataclass
class WorkflowSchedule:
    """Per-task placements and times for one workflow execution."""

    placements: dict[str, str]
    start_times: dict[str, float]
    end_times: dict[str, float]
    makespan: float
    extra: dict = field(default_factory=dict)


def _choose_machine(task: WorkflowTask, policy: str,
                    free: dict[str, int]) -> str:
    systems = [s for s in SYSTEM_ORDER if s in free]
    if policy == "model":
        if task.rpv is None:
            raise ValueError(f"task {task.name}: model policy needs an rpv")
        order = sorted(systems,
                       key=lambda s: task.rpv[SYSTEM_ORDER.index(s)])
        for system in order:
            if free[system] > 0:
                return system
        return order[0]
    if policy == "first_machine":
        return systems[0]
    if policy == "best_true":
        order = sorted(systems, key=lambda s: task.runtimes[s])
        for system in order:
            if free[system] > 0:
                return system
        return order[0]
    raise ValueError(f"unknown placement policy {policy!r}")


def schedule_workflow(
    workflow: Workflow,
    policy: str = "model",
    nodes_per_machine: int = 2,
    machines: tuple[str, ...] = SYSTEM_ORDER,
) -> WorkflowSchedule:
    """List-schedule a workflow onto small per-machine allocations.

    ``policy`` is ``"model"`` (place each ready task on its
    predicted-fastest machine with a free node), ``"best_true"`` (oracle),
    or ``"first_machine"`` (everything on one machine — the
    single-cluster user the paper's intro contrasts against).
    """
    if len(workflow) == 0:
        raise ValueError("empty workflow")
    graph = workflow.graph
    free = {name: nodes_per_machine for name in machines}
    indegree = {n: graph.in_degree(n) for n in graph.nodes}
    ready = sorted(n for n, d in indegree.items() if d == 0)
    running: list[tuple[float, int, str, str]] = []  # (end, seq, task, machine)
    seq = 0
    now = 0.0
    placements: dict[str, str] = {}
    starts: dict[str, float] = {}
    ends: dict[str, float] = {}

    while ready or running:
        # Start every ready task that can get a node now.
        progressed = True
        while progressed:
            progressed = False
            for name in list(ready):
                task = workflow.task(name)
                machine = _choose_machine(task, policy, free)
                if free[machine] > 0:
                    free[machine] -= 1
                    runtime = task.runtimes[machine]
                    heapq.heappush(running,
                                   (now + runtime, seq, name, machine))
                    seq += 1
                    placements[name] = machine
                    starts[name] = now
                    ends[name] = now + runtime
                    ready.remove(name)
                    progressed = True
        if not running:
            if ready:
                raise RuntimeError("deadlock: ready tasks but no capacity")
            break
        end, _, name, machine = heapq.heappop(running)
        now = end
        free[machine] += 1
        for succ in graph.successors(name):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
        ready.sort()

    return WorkflowSchedule(
        placements=placements,
        start_times=starts,
        end_times=ends,
        makespan=max(ends.values()),
    )


def critical_path_lower_bound(workflow: Workflow) -> float:
    """Longest path through the DAG using each task's best-case runtime.

    No schedule can beat this regardless of capacity.
    """
    if len(workflow) == 0:
        raise ValueError("empty workflow")
    graph = workflow.graph
    best: dict[str, float] = {}
    for name in nx.topological_sort(graph):
        task = workflow.graph.nodes[name]["task"]
        own = min(task.runtimes.values())
        preds = [best[p] for p in graph.predecessors(name)]
        best[name] = own + (max(preds) if preds else 0.0)
    return max(best.values())
