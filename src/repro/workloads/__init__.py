"""Job-trace construction for the scheduling experiment (Section VII).

"We create a workload of 50,000 jobs randomly sampled from our existing
data set with replacement."  :func:`build_workload` samples (app, input,
scale) execution groups from an :class:`repro.dataset.MPHPCDataset`,
carries each group's observed per-system runtimes onto a
:class:`repro.sched.Job`, and (optionally) attaches model-predicted
RPVs for the Model-based strategy — predicted from the counters of one
randomly chosen source system per job, mirroring deployment where a
user profiles wherever they happen to have access.
"""

from repro.workloads.trace import build_workload, poisson_arrivals

__all__ = ["build_workload", "poisson_arrivals"]
