"""Sampling job traces from the MP-HPC dataset."""

from __future__ import annotations

import numpy as np

from repro.apps.catalog import APPLICATIONS
from repro.arch.machines import SYSTEM_ORDER
from repro.core.predictor import CrossArchPredictor
from repro.dataset.generate import MPHPCDataset
from repro.sched.job import Job

__all__ = ["build_workload", "poisson_arrivals"]


def poisson_arrivals(
    n_jobs: int, rate_per_second: float, seed: int = 0
) -> np.ndarray:
    """Cumulative Poisson-process arrival times (seconds)."""
    if n_jobs < 1 or rate_per_second <= 0:
        raise ValueError("need n_jobs >= 1 and positive rate")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_second, size=n_jobs)
    return np.cumsum(gaps)


def build_workload(
    dataset: MPHPCDataset,
    n_jobs: int = 50_000,
    seed: int = 0,
    predictor: CrossArchPredictor | None = None,
    arrival_rate: float | None = None,
    with_uncertainty: bool = False,
) -> list[Job]:
    """Sample *n_jobs* jobs (with replacement) from the dataset.

    Each sampled job corresponds to one (app, input, scale) execution
    group; its per-system runtimes are the group's observed times.  When
    *predictor* is given, each job gets a ``predicted_rpv`` computed
    from the features of one randomly chosen source system's row (batch
    predicted for speed).  ``true_rpv`` is always attached.

    *with_uncertainty* additionally attaches ``rpv_std`` from the
    predictor's ``predict_with_uncertainty`` (for the risk-aware
    strategy).  The mean side of that call is bit-identical to
    ``predict``, so enabling it never changes ``predicted_rpv``.

    *arrival_rate* (jobs/second) switches from the paper's batch
    submission (everything at t=0) to Poisson arrivals.
    """
    if with_uncertainty and predictor is None:
        raise ValueError("with_uncertainty requires a predictor")
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    frame = dataset.frame
    groups = dataset.group_labels()
    uniq, inverse = np.unique(groups.astype(str), return_inverse=True)
    n_groups = len(uniq)

    # Index rows by group, remembering each row's system.
    machine_col = np.array([str(m) for m in frame["machine"]])
    times_col = np.asarray(frame["time_seconds"], dtype=np.float64)
    scale_col = np.array([str(s) for s in frame["scale"]])
    app_col = np.array([str(a) for a in frame["app"]])
    sys_index = {name: i for i, name in enumerate(SYSTEM_ORDER)}

    group_rows: list[list[int]] = [[] for _ in range(n_groups)]
    for row, g in enumerate(inverse):
        group_rows[g].append(row)

    rng = np.random.default_rng(seed)
    picks = rng.integers(0, n_groups, size=n_jobs)
    submit = (
        poisson_arrivals(n_jobs, arrival_rate, seed=seed + 1)
        if arrival_rate is not None
        else np.zeros(n_jobs)
    )

    # Choose a source row per job for prediction and batch-predict.
    source_rows = np.empty(n_jobs, dtype=np.int64)
    for j, g in enumerate(picks):
        rows = group_rows[g]
        source_rows[j] = rows[int(rng.integers(len(rows)))]
    predicted = None
    pred_std = None
    if predictor is not None:
        X = dataset.X()[source_rows]
        if with_uncertainty:
            predicted, pred_std = predictor.predict_with_uncertainty(X)
        else:
            predicted = predictor.predict(X)

    jobs: list[Job] = []
    for j, g in enumerate(picks):
        rows = group_rows[g]
        runtimes = {machine_col[r]: float(times_col[r]) for r in rows}
        any_row = rows[0]
        app_name = app_col[any_row]
        times_vec = np.full(len(SYSTEM_ORDER), np.nan)
        for r in rows:
            times_vec[sys_index[machine_col[r]]] = times_col[r]
        true_rpv = times_vec / np.nanmax(times_vec)
        jobs.append(
            Job(
                job_id=j,
                app=app_name,
                uses_gpu=APPLICATIONS[app_name].gpu_support,
                nodes_required=2 if scale_col[any_row] == "2node" else 1,
                runtimes=runtimes,
                submit_time=float(submit[j]),
                predicted_rpv=None if predicted is None else predicted[j],
                true_rpv=true_rpv,
                rpv_std=None if pred_std is None else pred_std[j],
            )
        )
    return jobs
