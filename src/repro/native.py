"""Optional C hot-loop kernels, compiled on demand with graceful fallback.

The flat-ensemble tree routing in :meth:`repro.ml.tree.FlatEnsemble.
predict_leaves` is three dependent gathers per (tree, row, level) — a
memory-latency-bound chain that numpy cannot fuse: every level round-trips
each intermediate through a full-size temporary.  The C kernel below runs
the same chain register-resident, tiled so a block of binned rows stays in
L1/L2 across all trees (`repro perf` attributes the win: the numpy path's
working set per level is ``3 * states * 4`` bytes of temporaries, the C
path's is one row of ``n_features`` bytes plus the node arrays).

Design constraints:

* **Bit-identical**: the kernel evaluates exactly the integer comparisons
  of the numpy path (uint8 feature vs packed uint8 threshold), so the
  routed leaves — and therefore predictions — are equal, not approximately
  equal.  Pinned by ``tests/test_ml_flat.py``.
* **Zero hard dependencies**: the kernel is compiled at first use with the
  system C compiler (``cc``/``gcc``).  No compiler, a failed compile, a
  read-only cache directory, or ``REPRO_NATIVE=0`` all degrade silently to
  the numpy path — never an exception, never a behavioural difference.
* **Compile once**: the shared object is cached under
  ``$REPRO_NATIVE_CACHE`` (default ``~/.cache/repro-native``) keyed by the
  SHA-256 of the source + compiler flags, so recompilation happens only
  when the kernel changes.  Concurrent builders race benignly: both
  compile to unique temp names and ``os.replace`` atomically.

This module is bottom-layer: it imports nothing from ``repro`` (enforced
by ``tools/check_layering.py``) so any layer may use it.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path

import numpy as np

__all__ = ["available", "route_leaves", "kernel_info"]

_SOURCE = r"""
#include <stdint.h>

/* Route every (tree, row) pair to its leaf in the flat ensemble arrays.
 *
 * featthr:  per-node (feature << 8) | uint8_bin_threshold
 * children: interleaved per-node [right, left] indexed by 2*node + go_left
 *           (leaves self-loop, so every level is branch-free)
 * roots:    per-tree root node index
 * xb:       row-major (n_rows, n_features) uint8 binned feature matrix
 * out:      row-major (n_trees, n_rows) int32 leaf node indices
 *
 * Rows are processed in tiles sized so a tile of xb stays cache-resident
 * while every tree walks it (the node arrays are small and hot; the row
 * data is the streaming operand).
 */
void route_leaves(const int32_t *featthr, const int32_t *children,
                  const int32_t *roots, const uint8_t *xb,
                  int64_t n_rows, int64_t n_features, int64_t n_trees,
                  int64_t max_depth, int32_t *out)
{
    int64_t tile = 16384 / (n_features > 0 ? n_features : 1);
    if (tile < 64)
        tile = 64;
    for (int64_t r0 = 0; r0 < n_rows; r0 += tile) {
        int64_t r1 = r0 + tile < n_rows ? r0 + tile : n_rows;
        for (int64_t t = 0; t < n_trees; t++) {
            const int32_t root = roots[t];
            int32_t *dst = out + t * n_rows;
            const uint8_t *row = xb + r0 * n_features;
            for (int64_t r = r0; r < r1; r++, row += n_features) {
                int32_t node = root;
                for (int64_t d = 0; d < max_depth; d++) {
                    const int32_t ft = featthr[node];
                    const int32_t go_left = row[ft >> 8] <= (ft & 255);
                    node = children[(node << 1) + go_left];
                }
                dst[r] = node;
            }
        }
    }
}
"""

_CFLAGS = ("-O3", "-march=native", "-shared", "-fPIC", "-fno-math-errno")

#: Tri-state: None = not yet attempted, else (handle-or-None, detail str).
_state: tuple[ctypes.CDLL | None, str] | None = None
_lock = threading.Lock()


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-native"


def _compile() -> tuple[ctypes.CDLL | None, str]:
    """Build (or reuse) the kernel shared object; never raises."""
    if os.environ.get("REPRO_NATIVE", "1") in ("0", "off", "false"):
        return None, "disabled via REPRO_NATIVE"
    digest = hashlib.sha256(
        (_SOURCE + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:16]
    try:
        cache = _cache_dir()
        cache.mkdir(parents=True, exist_ok=True)
        so_path = cache / f"kernels-{digest}.so"
        if not so_path.is_file():
            src_path = cache / f"kernels-{digest}.c"
            src_path.write_text(_SOURCE)
            fd, tmp = tempfile.mkstemp(dir=cache, suffix=".so")
            os.close(fd)
            for compiler in ("cc", "gcc"):
                proc = subprocess.run(
                    [compiler, *_CFLAGS, "-o", tmp, str(src_path)],
                    capture_output=True, text=True, timeout=120,
                )
                if proc.returncode == 0:
                    os.replace(tmp, so_path)
                    break
            else:
                os.unlink(tmp)
                return None, f"compile failed: {proc.stderr.strip()[:200]}"
        lib = ctypes.CDLL(str(so_path))
    except (OSError, subprocess.SubprocessError, FileNotFoundError) as exc:
        return None, f"unavailable: {exc}"
    fn = lib.route_leaves
    fn.restype = None
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_int32), ctypes.POINTER(ctypes.c_int32),
        ctypes.POINTER(ctypes.c_int32), ctypes.POINTER(ctypes.c_uint8),
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        ctypes.POINTER(ctypes.c_int32),
    ]
    return lib, str(so_path)


def _load() -> ctypes.CDLL | None:
    global _state
    state = _state
    if state is None:
        with _lock:
            state = _state
            if state is None:
                _state = state = _compile()
    return state[0]


def available() -> bool:
    """True when the compiled kernel is loadable on this host."""
    return _load() is not None


def kernel_info() -> str:
    """Human-readable kernel status (shared-object path or the reason
    the fallback path is active)."""
    _load()
    assert _state is not None
    return _state[1]


_I32 = ctypes.POINTER(ctypes.c_int32)
_U8 = ctypes.POINTER(ctypes.c_uint8)


def route_leaves(
    featthr: np.ndarray,
    children: np.ndarray,
    roots: np.ndarray,
    xb: np.ndarray,
    max_depth: int,
    out: np.ndarray,
) -> bool:
    """Fill *out* with per-(tree, row) leaf indices; False if unavailable.

    All arrays must be C-contiguous with the dtypes produced by
    :class:`repro.ml.tree.FlatEnsemble` (int32 node arrays, uint8 rows,
    int32 output of shape ``(n_trees, n_rows)``).  Returns ``True`` when
    the kernel ran; ``False`` means the caller must take its fallback
    path (kernel disabled or not compilable here).
    """
    lib = _load()
    if lib is None:
        return False
    n_rows, n_features = xb.shape
    lib.route_leaves(
        featthr.ctypes.data_as(_I32),
        children.ctypes.data_as(_I32),
        roots.ctypes.data_as(_I32),
        xb.ctypes.data_as(_U8),
        n_rows, n_features, out.shape[0], max_depth,
        out.ctypes.data_as(_I32),
    )
    return True
