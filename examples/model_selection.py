#!/usr/bin/env python
"""Model and feature selection (Section VI of the paper).

Trains all four models under the paper's protocol (90/10 split, 5-fold
cross-validation inside the training split), compares MAE and SOS,
then runs the Section VI-B feature-selection pass: rank features by
average gain, retrain on the top set, compare.

Run:  python examples/model_selection.py
"""

from __future__ import annotations

from repro import generate_dataset
from repro.core import select_top_features, train_all_models, train_model
from repro.dataset.schema import FEATURE_LABELS


def main() -> None:
    print("generating dataset...")
    dataset = generate_dataset(inputs_per_app=8, seed=0)

    print("training mean / linear / forest / xgboost with 5-fold CV "
          "(this takes a minute)...\n")
    results = train_all_models(dataset, seed=42, run_cv=True)

    print(f"{'model':>10s} {'test MAE':>9s} {'test SOS':>9s} "
          f"{'cv MAE':>8s} {'cv SOS':>8s}")
    for name, trained in results.items():
        print(f"{name:>10s} {trained.test_mae:9.4f} {trained.test_sos:9.3f} "
              f"{trained.cv_mae:8.4f} {trained.cv_sos:8.3f}")

    from repro.frame import Frame
    from repro.viz import grouped_bars

    frame = Frame.from_records([
        {"model": name, "mae": t.test_mae, "sos": t.test_sos}
        for name, t in results.items()
    ])
    print("\n" + grouped_bars(frame, "model", ["mae", "sos"],
                              title="Fig. 2 shape (lower MAE / higher SOS "
                                    "is better)"))

    xgb = results["xgboost"]
    mean = results["mean"]
    print(f"\nXGBoost improves {1 - xgb.test_mae / mean.test_mae:.1%} over "
          f"mean prediction (paper: 81.6%)")

    print("\n=== feature selection (Section VI-B) ===")
    print("feature importances (average gain), top 10:")
    for feature, value in list(xgb.predictor.feature_importances().items())[:10]:
        print(f"  {FEATURE_LABELS.get(feature, feature):22s} {value:.3f}")

    top = select_top_features(xgb, k=12)
    retrained = train_model(dataset, model="xgboost", seed=42,
                            run_cv=False, feature_columns=top)
    print(f"\nretrained on top-12 features: MAE {retrained.test_mae:.4f} "
          f"(all 21 features: {xgb.test_mae:.4f})")
    print("the paper notes selection mainly reduces future data-collection "
          "cost — accuracy should be close")


if __name__ == "__main__":
    main()
