#!/usr/bin/env python
"""Roofline analysis of the four Table I machines and twenty apps.

Builds the standard performance-engineering picture underneath the
paper's data: each machine's compute/bandwidth roofs, each
application's operational intensity, and which bound dominates each
application on each machine — the physical structure the ML model ends
up learning from counters.

Run:  python examples/roofline_analysis.py
"""

from __future__ import annotations

from repro.apps import APPLICATIONS, generate_inputs
from repro.arch import MACHINES, SYSTEM_ORDER
from repro.perfsim import (
    app_operational_intensity,
    classify_bound,
    cpu_roofline,
    gpu_roofline,
)
from repro.perfsim.config import make_run_config


def main() -> None:
    print("=== machine rooflines (node-level) ===")
    print(f"{'roof':28s} {'peak GF/s':>10s} {'BW GB/s':>9s} {'ridge F/B':>10s}")
    for name in SYSTEM_ORDER:
        machine = MACHINES[name]
        for roof in filter(None, [
            cpu_roofline(machine, "dp"),
            gpu_roofline(machine, "dp") if machine.has_gpu else None,
        ]):
            print(f"{roof.label:28s} {roof.peak_gflops:10.0f} "
                  f"{roof.bandwidth_gbs:9.0f} {roof.ridge_point:10.2f}")

    print("\n=== application operational intensities (flops/byte) ===")
    intensities = sorted(
        ((app_operational_intensity(a), a.name) for a in APPLICATIONS.values()),
        reverse=True,
    )
    for oi, name in intensities[:5]:
        print(f"  {name:14s} {oi:.3f}   (most compute-dense)")
    print("  ...")
    for oi, name in intensities[-3:]:
        print(f"  {name:14s} {oi:.3f}   (most memory-dense)")

    print("\n=== dominant bound per (app, machine) at one node ===")
    apps = ("Nekbone", "SW4lite", "XSBench", "Ember", "CANDLE")
    header = f"{'app':>10s} " + " ".join(f"{s:>14s}" for s in SYSTEM_ORDER)
    print(header)
    for app_name in apps:
        app = APPLICATIONS[app_name]
        inp = generate_inputs(app, 1, seed=2)[0]
        cells = []
        for system in SYSTEM_ORDER:
            machine = MACHINES[system]
            config = make_run_config(app, machine, "1node")
            c = classify_bound(app, inp, machine, config)
            cells.append(f"{c.bound:>14s}")
        print(f"{app_name:>10s} " + " ".join(cells))

    print("\nGPU-capable apps on Lassen/Corona classify the device roofline "
          "(compute / bandwidth / launch); CPU runs classify issue vs DRAM "
          "bandwidth vs communication vs I/O.")


if __name__ == "__main__":
    main()
