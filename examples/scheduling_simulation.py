#!/usr/bin/env python
"""Multi-resource scheduling with model-based machine assignment.

Reproduces Section VII interactively: samples a job workload from the
MP-HPC dataset, schedules it on the four Table I clusters with
FCFS+EASY under each assignment strategy, and prints makespan, average
bounded slowdown, and the per-machine job distribution.

Run:  python examples/scheduling_simulation.py [n_jobs]
"""

from __future__ import annotations

import sys

from repro import (
    CrossArchPredictor,
    Scheduler,
    average_bounded_slowdown,
    build_workload,
    generate_dataset,
    makespan,
    strategy_by_name,
)
from repro.ml import train_test_split
from repro.sched.machines import ClusterState
from repro.sched.metrics import average_wait_time, per_machine_job_counts


def main(n_jobs: int = 10_000) -> None:
    print("generating dataset and training the predictor...")
    dataset = generate_dataset(inputs_per_app=8, seed=0)
    train_rows, _ = train_test_split(dataset.num_rows, 0.1, random_state=42)
    predictor = CrossArchPredictor.train(dataset, rows=train_rows)

    print(f"sampling {n_jobs} jobs from the dataset (with replacement)...")
    jobs = build_workload(dataset, n_jobs=n_jobs, seed=7,
                          predictor=predictor)

    print(f"\n{'strategy':>12s} {'makespan (h)':>13s} {'bounded slowdown':>17s} "
          f"{'avg wait (s)':>13s}")
    baseline_span = None
    for name in ("random", "round_robin", "user_rr", "model", "oracle"):
        scheduler = Scheduler(strategy_by_name(name, seed=11), ClusterState())
        result = scheduler.run(list(jobs))
        span = makespan(result) / 3600.0
        if name == "random":
            baseline_span = span
        gain = f" ({1 - span / baseline_span:+.1%} vs random)" \
            if baseline_span else ""
        print(f"{name:>12s} {span:13.3f} "
              f"{average_bounded_slowdown(result):17.2f} "
              f"{average_wait_time(result):13.1f}{gain}")
        if name == "model":
            counts = per_machine_job_counts(result)
            dist = ", ".join(f"{m}: {c}" for m, c in sorted(counts.items()))
            print(f"{'':>12s} model placement -> {dist}")

    print("\npaper shape: Model < User+RR < Round-Robin ~ Random on both "
          "metrics, up to ~20% makespan reduction")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10_000)
