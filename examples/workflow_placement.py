#!/usr/bin/env python
"""Placing a scientific workflow's tasks across architectures.

The paper's opening motivation: "Modern scientific workflows have
multiple computational tasks, and each task may be better suited for a
different architecture."  This example builds the canonical ensemble
workflow (setup -> N simulation members -> ML analysis), predicts each
task's RPV from counters profiled on ONE machine, and compares
end-to-end makespan for three placement policies:

* everything on one cluster (typical single-allocation user),
* model-guided per-task placement (this paper's contribution),
* oracle per-task placement (upper bound).

Run:  python examples/workflow_placement.py
"""

from __future__ import annotations

import numpy as np

from repro import CrossArchPredictor, generate_dataset
from repro.apps import APPLICATIONS, generate_inputs
from repro.arch import MACHINES, QUARTZ, SYSTEM_ORDER
from repro.hatchet_lite import run_record
from repro.ml import train_test_split
from repro.perfsim.config import make_run_config
from repro.profiler import profile_run
from repro.workloads.workflow import (
    WorkflowTask,
    critical_path_lower_bound,
    make_ensemble_workflow,
    schedule_workflow,
)


def build_task(predictor, app_name, seed, label):
    """Profile an app once on Quartz, predict everywhere, build a task."""
    app = APPLICATIONS[app_name]
    inp = generate_inputs(app, 1, seed=seed)[0]
    config = make_run_config(app, QUARTZ, "1node")
    record = run_record(profile_run(app, inp, QUARTZ, config, seed=seed))
    rpv = predictor.predict_record(record)
    # Ground-truth runtimes from the simulator (what would really happen).
    runtimes = {}
    for system in SYSTEM_ORDER:
        machine = MACHINES[system]
        cfg = make_run_config(app, machine, "1node")
        runtimes[system] = profile_run(
            app, inp, machine, cfg, seed=seed
        ).meta["time_seconds"]
    return WorkflowTask(name=label, runtimes=runtimes, rpv=rpv)


def main() -> None:
    print("training the RPV predictor...")
    dataset = generate_dataset(inputs_per_app=8, seed=0)
    train_rows, _ = train_test_split(dataset.num_rows, 0.1, random_state=42)
    predictor = CrossArchPredictor.train(dataset, rows=train_rows)

    print("building the ensemble workflow "
          "(PIC setup -> 6 MD members -> CNN analysis)...")
    setup = build_task(predictor, "PICSARLite", 1000, "setup")
    members = [
        build_task(predictor, "ExaMiniMD", 2000 + i, f"member_{i}")
        for i in range(6)
    ]
    analysis = build_task(predictor, "CosmoFlow", 3000, "analysis")
    workflow = make_ensemble_workflow(setup, members, analysis)

    print(f"\n{'policy':>16s} {'makespan (s)':>13s}")
    bound = critical_path_lower_bound(workflow)
    results = {}
    for policy in ("first_machine", "model", "best_true"):
        sched = schedule_workflow(workflow, policy=policy,
                                  nodes_per_machine=2)
        results[policy] = sched
        print(f"{policy:>16s} {sched.makespan:13.1f}")
    print(f"{'critical path':>16s} {bound:13.1f}  (lower bound)")

    model = results["model"]
    print("\nmodel-guided placements:")
    for name in sorted(model.placements):
        print(f"  {name:10s} -> {model.placements[name]}")
    gain = 1 - model.makespan / results["first_machine"].makespan
    print(f"\nmodel placement cuts workflow makespan by {gain:.1%} vs "
          f"running everything on {SYSTEM_ORDER[0]}")


if __name__ == "__main__":
    main()
