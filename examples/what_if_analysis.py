#!/usr/bin/env python
"""What-if analysis: estimate GPU speedup without GPU access.

Section VIII-B: "users can obtain an estimate of the speedup from
running on a given architecture without actually having access to or
being capable of running that architecture.  For instance, if a
particular application does not support AMD GPUs a user could estimate
the performance increase/decrease if they were to implement AMD GPU
support."

This example profiles several applications on the cheap CPU system
(Quartz) only, then uses the trained model to rank all four systems —
including the GPU machines the user never touched — and compares the
predictions with the simulator's ground truth.

Run:  python examples/what_if_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import CrossArchPredictor, generate_dataset
from repro.apps import APPLICATIONS, generate_inputs
from repro.arch import MACHINES, QUARTZ, SYSTEM_ORDER
from repro.hatchet_lite import run_record
from repro.ml import train_test_split
from repro.perfsim.config import make_run_config
from repro.profiler import profile_run

CASE_STUDIES = ("XSBench", "CANDLE", "SW4lite", "miniVite", "Nekbone")


def main() -> None:
    print("training the predictor on the MP-HPC dataset...")
    dataset = generate_dataset(inputs_per_app=8, seed=0)
    train_rows, _ = train_test_split(dataset.num_rows, 0.1, random_state=42)
    predictor = CrossArchPredictor.train(dataset, rows=train_rows)

    print("\nprofiling on Quartz only (cheap, always available), "
          "predicting everywhere:\n")
    header = f"{'app':>10s} " + " ".join(f"{s:>18s}" for s in SYSTEM_ORDER)
    print(header)
    print("-" * len(header))

    for app_name in CASE_STUDIES:
        app = APPLICATIONS[app_name]
        inp = generate_inputs(app, 1, seed=4242)[0]
        config = make_run_config(app, QUARTZ, "1node")
        record = run_record(profile_run(app, inp, QUARTZ, config, seed=4242))
        predicted = predictor.predict_record(record)

        # Ground truth from the simulator (what the user cannot measure).
        truth = np.empty(len(SYSTEM_ORDER))
        for j, system in enumerate(SYSTEM_ORDER):
            machine = MACHINES[system]
            cfg = make_run_config(app, machine, "1node")
            truth[j] = profile_run(app, inp, machine, cfg,
                                   seed=4242).meta["time_seconds"]
        truth = truth / truth.max()

        cells = " ".join(
            f"{p:7.2f} (true {t:4.2f})" for p, t in zip(predicted, truth)
        )
        print(f"{app_name:>10s} {cells}")

        # Headline estimate: predicted speedup of the best GPU system
        # over Quartz.
        q = list(SYSTEM_ORDER).index("Quartz")
        best_gpu = min(predicted[2], predicted[3])
        print(f"{'':>10s} -> predicted speedup of best GPU system over "
              f"Quartz: {predicted[q] / best_gpu:.1f}x "
              f"(true {truth[q] / min(truth[2], truth[3]):.1f}x)")

    print("\nRPV values are execution-time ratios relative to the slowest "
          "system (smaller = faster).")

    # The same analysis as a first-class API: rank the whole portfolio
    # by predicted gain from the best GPU system.
    from repro.core import porting_value
    from repro.hatchet_lite import run_record as _rr

    records = []
    for app_name in CASE_STUDIES:
        app = APPLICATIONS[app_name]
        inp = generate_inputs(app, 1, seed=4242)[0]
        config = make_run_config(app, QUARTZ, "1node")
        records.append(_rr(profile_run(app, inp, QUARTZ, config, seed=4242)))
    ranked = porting_value(predictor, records, source_system="Quartz")
    print("\nporting shortlist (predicted gain from the best GPU system):")
    for app_name, system, speedup in zip(
        ranked["app"], ranked["best_gpu_system"],
        ranked["speedup_vs_source"],
    ):
        print(f"  {app_name:12s} -> {system:7s} {speedup:5.1f}x")


if __name__ == "__main__":
    main()
