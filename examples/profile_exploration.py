#!/usr/bin/env python
"""Exploring simulated profiles with the Hatchet-style API.

Demonstrates the measurement substrate of the reproduction (Section II-A
and V-B of the paper): run an application under the simulated profiler
on different architectures, inspect the calling context tree, find hot
kernels, prune cold frames, and compare the architecture-specific
counter names (CPU PAPI vs NVIDIA CUPTI vs AMD rocprof).

Run:  python examples/profile_exploration.py
"""

from __future__ import annotations

from repro.apps import APPLICATIONS, generate_inputs
from repro.arch import CORONA, LASSEN, QUARTZ
from repro.hatchet_lite import (
    GraphFrame,
    cross_arch_table,
    diff_profiles,
    flat_profile,
    run_record,
)
from repro.perfsim.config import make_run_config
from repro.profiler import profile_run, save_profile, load_profile


def main() -> None:
    app = APPLICATIONS["AMG"]
    inp = generate_inputs(app, 1, seed=5)[0]

    print(f"=== profiling {app.name} {inp.label!r} on three architectures ===\n")
    profiles = {}
    for machine in (QUARTZ, LASSEN, CORONA):
        config = make_run_config(app, machine, "1node")
        profiles[machine.name] = profile_run(app, inp, machine, config,
                                             seed=5)

    quartz = profiles["Quartz"]
    gf = GraphFrame(quartz)
    print("calling context tree (Quartz, PAPI_TOT_INS):")
    print(quartz.root.format_tree("PAPI_TOT_INS"))

    print("\nhot kernels by instruction count:")
    hot = gf.hot_nodes("PAPI_TOT_INS", top=3)
    for path, value in zip(hot["path"], hot["PAPI_TOT_INS"]):
        print(f"  {path:32s} {value:.3g}")

    total = quartz.run_totals()["PAPI_TOT_INS"]
    pruned = gf.filter(
        lambda n: n.metrics.get("PAPI_TOT_INS", 0) > 0.10 * total
    )
    print(f"\nafter pruning frames below 10% of instructions: "
          f"{gf.dataframe.num_rows} -> {pruned.dataframe.num_rows} nodes")

    print("\n=== the same logical counters have different names per "
          "architecture (Table III) ===")
    for name, profile in profiles.items():
        print(f"\n{name} ({profile.meta['profiler']}):")
        print("  " + ", ".join(profile.counter_names[:8]) + ", ...")

    print("\n=== run records decode everything back to canonical fields ===")
    for name, profile in profiles.items():
        rec = run_record(profile)
        print(f"{name:8s} branch/total = "
              f"{rec['branch'] / rec['total_instructions']:.3f}   "
              f"time = {rec['time_seconds']:.1f}s   "
              f"gpu_counters = {bool(rec['uses_gpu'])}")

    print("\n=== Hatchet-style analysis operations ===")
    flat = flat_profile(quartz, "PAPI_TOT_INS")
    print("flat profile (top 3 functions):")
    for fn, frac in list(zip(flat["function"], flat["fraction"]))[:3]:
        print(f"  {fn:20s} {frac:.1%}")

    config_2n = make_run_config(app, QUARTZ, "2node")
    quartz_2n = profile_run(app, inp, QUARTZ, config_2n, seed=5)
    diff = diff_profiles(quartz, quartz_2n, "PAPI_TOT_INS")
    print("\nbiggest per-rank changes 1 node -> 2 nodes:")
    for path, ratio in list(zip(diff["path"], diff["ratio"]))[:3]:
        print(f"  {path:32s} x{ratio:.2f}")

    table = cross_arch_table(list(profiles.values()))
    print("\ncross-architecture canonical-counter table "
          f"({table.num_rows} rows x {table.num_columns} cols): "
          "branch counts per machine:")
    for machine, branch in zip(table["machine"], table["branch"]):
        print(f"  {machine:8s} {branch:.3g}")

    # Profiles round-trip through the on-disk database format.
    import tempfile, pathlib
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "amg_quartz.json"
        save_profile(quartz, path)
        reloaded = load_profile(path)
        assert reloaded.run_totals() == quartz.run_totals()
        print(f"\nprofile database round-trip OK "
              f"({path.stat().st_size} bytes on disk)")


if __name__ == "__main__":
    main()
