#!/usr/bin/env python
"""Quickstart: train the cross-architecture predictor and use it.

Walks the paper's full pipeline at small scale:

1. generate a slice of the MP-HPC dataset (simulated profiled runs of
   the 20 Table II applications on the four Table I systems),
2. train the XGBoost-style RPV regressor with the 90/10 protocol,
3. evaluate it against the mean-prediction baseline (MAE + SOS),
4. profile a *new, unseen* run on one machine and predict its relative
   performance everywhere — the deployment story of Section I.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import CrossArchPredictor, generate_dataset
from repro.apps import APPLICATIONS, generate_inputs
from repro.arch import RUBY, SYSTEM_ORDER
from repro.hatchet_lite import run_record
from repro.ml import (
    MeanPredictor,
    mean_absolute_error,
    same_order_score,
    train_test_split,
)
from repro.perfsim.config import make_run_config
from repro.profiler import profile_run


def main() -> None:
    print("=== 1. Generate the MP-HPC dataset (small slice) ===")
    dataset = generate_dataset(inputs_per_app=8, seed=0)
    print(f"dataset: {dataset.num_rows} rows "
          f"({dataset.X().shape[1]} features, 4 RPV targets)\n")

    print("=== 2. Train the predictor (90/10 split) ===")
    train_rows, test_rows = train_test_split(
        dataset.num_rows, 0.1, random_state=42
    )
    predictor = CrossArchPredictor.train(
        dataset, model="xgboost", rows=train_rows
    )
    print(f"trained {predictor.kind} on {len(train_rows)} rows\n")

    print("=== 3. Evaluate vs the mean-prediction baseline ===")
    X, Y = dataset.X(), dataset.Y()
    pred = predictor.predict(X[test_rows])
    baseline = MeanPredictor().fit(X[train_rows], Y[train_rows])
    base_pred = baseline.predict(X[test_rows])
    mae = mean_absolute_error(Y[test_rows], pred)
    base_mae = mean_absolute_error(Y[test_rows], base_pred)
    print(f"XGBoost  MAE {mae:.3f}  SOS {same_order_score(Y[test_rows], pred):.3f}")
    print(f"Mean     MAE {base_mae:.3f}  SOS "
          f"{same_order_score(Y[test_rows], base_pred):.3f}")
    print(f"improvement over mean prediction: {1 - mae / base_mae:.1%} "
          f"(paper: 81.6%)\n")

    print("=== 4. Predict a brand-new run from one machine's counters ===")
    app = APPLICATIONS["XSBench"]
    inp = generate_inputs(app, 1, seed=999)[0]  # unseen input
    config = make_run_config(app, RUBY, "1node")
    profile = profile_run(app, inp, RUBY, config, seed=999)
    record = run_record(profile)
    rpv = predictor.predict_record(record)
    print(f"profiled {app.name} {inp.label!r} on Ruby (1 node)")
    print("predicted RPV (time relative to slowest system):")
    for system, value in zip(SYSTEM_ORDER, rpv):
        print(f"  {system:8s} {value:.3f}")
    order = predictor.rank_systems(record)
    print(f"recommended machine order (fastest first): {', '.join(order)}")

    print("\n=== 5. Top features (average gain) ===")
    for name, value in list(predictor.feature_importances_labeled().items())[:6]:
        print(f"  {name:22s} {value:.3f}")


if __name__ == "__main__":
    main()
