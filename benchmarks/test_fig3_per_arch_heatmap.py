"""Figure 3: MAE / SOS heatmaps per (model, source architecture).

Paper: XGBoost best everywhere; counters from the CPU systems (Ruby
especially, then Quartz) yield better predictions than counters from
the GPU systems, attributed to the maturity of CPU performance counters
vs GPU profiling (rocprof on Corona being the newest).
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import per_architecture_study

from conftest import report


def test_fig3_per_arch_heatmap(benchmark, bench_dataset):
    frame = benchmark.pedantic(
        lambda: per_architecture_study(bench_dataset, seed=42),
        rounds=1, iterations=1,
    )
    report(
        "fig3_per_arch_heatmap",
        "Fig. 3 — MAE and SOS per (model, source architecture)",
        frame,
        paper_notes="CPU-source counters (Quartz/Ruby) predict better than "
                    "GPU-source (Lassen/Corona); XGBoost best per column",
    )
    from repro.viz import heatmap

    print(heatmap(frame, "model", "source_arch", "mae",
                  title="MAE heatmap (darker = lower = better)",
                  invert=True))
    models = np.array([str(m) for m in frame["model"]])
    archs = np.array([str(a) for a in frame["source_arch"]])
    mae = np.asarray(frame["mae"])

    # Mean prediction row is the worst in every column.
    for arch in ("Quartz", "Ruby", "Lassen", "Corona"):
        col = mae[archs == arch]
        col_models = models[archs == arch]
        assert col[col_models == "mean"][0] == col.max()

    # The fine-grained per-source ordering does NOT reproduce in this
    # simulator (it is split-seed variance at per-arch subset sizes;
    # see EXPERIMENTS.md).  The robust facts asserted here: the learned
    # tree model carries real signal from every counter source, and the
    # per-source cells stay within a common band (no source is
    # unusable).  The paper's *mechanism* — GPU profiling noise degrades
    # GPU-source accuracy — is asserted in
    # test_ablation_counter_noise.py, where it is monotone and clean.
    xgb = {a: m for a, m in zip(archs[models == "xgboost"],
                                mae[models == "xgboost"])}
    mean_cells = {a: m for a, m in zip(archs[models == "mean"],
                                       mae[models == "mean"])}
    for arch, cell in xgb.items():
        assert cell < 0.6 * mean_cells[arch]
    assert max(xgb.values()) < 2.0 * min(xgb.values())
