"""Microbenchmark: telemetry overhead on the scheduling hot loop.

The telemetry subsystem promises that instrumentation is boundary-only:
the scheduler's event loop carries no per-event telemetry calls, and
with telemetry *off* every accessor collapses to a global read plus a
branch.  This benchmark holds that promise to numbers:

* the contended scheduling workload from ``test_perf_sched`` is run
  back to back with telemetry off and with the metrics registry
  recording; the same-host wall-time ratio must stay under
  :data:`OVERHEAD_LIMIT` (the ISSUE's < 5% gate — and since disabled
  mode does strictly less work than metrics mode, it is bounded by the
  same ratio);
* a no-op microbenchmark times ``telemetry.counter()`` /
  ``telemetry.span()`` in disabled mode, pinning the fast path to
  nanoseconds per call.

Results land in ``benchmarks/BENCH_telemetry.json``.  Gates are
same-host ratios, never absolute wall times, so they hold across
differently-sized CI hosts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import telemetry
from repro.sched import Scheduler, strategy_by_name

from test_perf_sched import _cluster, _workload

BENCH_PATH = Path(__file__).parent / "BENCH_telemetry.json"

N_JOBS = 5_000
REPEATS = 3
#: Metrics-on (and therefore disabled-mode) overhead on the sched hot
#: loop must stay under 5%.
OVERHEAD_LIMIT = 1.05
#: Disabled accessors must stay in no-op territory (generous bound;
#: measured values are ~0.1 µs/call).
MAX_NOOP_US_PER_CALL = 2.0
N_NOOP_CALLS = 200_000


def _time_run(jobs) -> float:
    """Min-of-N wall time for one full scheduling run."""
    best = float("inf")
    for _ in range(REPEATS):
        sched = Scheduler(strategy_by_name("model", seed=11), _cluster())
        t0 = time.perf_counter()
        sched.run(list(jobs))
        best = min(best, time.perf_counter() - t0)
    return best


def test_perf_telemetry_overhead():
    jobs = _workload(N_JOBS)
    results: dict = {}

    try:
        # Interleave a warm-up of each mode, then measure off/metrics
        # back to back on the same host.
        telemetry.configure("off")
        t_off = _time_run(jobs)

        telemetry.configure("metrics")
        telemetry.reset()
        t_metrics = _time_run(jobs)
        counters = telemetry.snapshot()["counters"]
        assert counters["sched.runs"] == REPEATS  # it really recorded

        telemetry.configure("trace")
        telemetry.reset()
        t_trace = _time_run(jobs)
        assert len(telemetry.spans()) == REPEATS

        # --- disabled-mode no-op accessors ----------------------------
        telemetry.configure("off")
        t0 = time.perf_counter()
        for _ in range(N_NOOP_CALLS):
            telemetry.counter("bench.noop").inc()
        counter_us = (time.perf_counter() - t0) / N_NOOP_CALLS * 1e6

        t0 = time.perf_counter()
        for _ in range(N_NOOP_CALLS):
            with telemetry.span("bench.noop"):
                pass
        span_us = (time.perf_counter() - t0) / N_NOOP_CALLS * 1e6
    finally:
        telemetry.configure("off")
        telemetry.reset()

    overhead_metrics = t_metrics / t_off
    overhead_trace = t_trace / t_off
    results["sched_overhead"] = {
        "n_jobs": N_JOBS,
        "repeats": REPEATS,
        "wall_s_off": round(t_off, 4),
        "wall_s_metrics": round(t_metrics, 4),
        "wall_s_trace": round(t_trace, 4),
        "overhead_metrics_vs_off": round(overhead_metrics, 4),
        "overhead_trace_vs_off": round(overhead_trace, 4),
    }
    results["noop_accessors"] = {
        "calls": N_NOOP_CALLS,
        "counter_us_per_call": round(counter_us, 4),
        "span_us_per_call": round(span_us, 4),
    }

    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data.update(results)
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")

    assert overhead_metrics <= OVERHEAD_LIMIT, (
        f"metrics-mode scheduling overhead {overhead_metrics:.3f}x exceeds "
        f"the {OVERHEAD_LIMIT}x gate (off {t_off:.3f}s vs "
        f"metrics {t_metrics:.3f}s)")
    assert overhead_trace <= OVERHEAD_LIMIT, (
        f"trace-mode scheduling overhead {overhead_trace:.3f}x exceeds "
        f"the {OVERHEAD_LIMIT}x gate (boundary-only spans should be "
        f"invisible at run granularity)")
    assert counter_us <= MAX_NOOP_US_PER_CALL, (
        f"disabled counter() costs {counter_us:.2f} µs/call")
    assert span_us <= MAX_NOOP_US_PER_CALL, (
        f"disabled span() costs {span_us:.2f} µs/call")


def test_perf_flightrec_overhead():
    """The flight recorder must be free when disabled and boundary-cheap
    when enabled.

    ``flightrec.record`` sits on serve/sched boundary paths that run
    with the recorder *disabled* by default, so the disabled call gets
    the same no-op gate as the telemetry accessors.  The enabled ring
    append is O(1) and lock-guarded; the sched workload (which records
    one boundary event per run) must not move past the 5% gate either.
    """
    from repro.telemetry import flightrec

    jobs = _workload(N_JOBS)
    results: dict = {}

    try:
        flightrec.disable()
        flightrec.recorder().clear()
        t_disabled = _time_run(jobs)

        flightrec.enable(512)
        t_enabled = _time_run(jobs)
        # One sched-run boundary event per scheduling run really landed.
        assert len(flightrec.recorder()) >= REPEATS

        # --- disabled-mode no-op record -------------------------------
        flightrec.disable()
        t0 = time.perf_counter()
        for _ in range(N_NOOP_CALLS):
            flightrec.record("bench.noop", value=1)
        noop_us = (time.perf_counter() - t0) / N_NOOP_CALLS * 1e6

        # --- enabled ring append (informational) ----------------------
        flightrec.enable(512)
        t0 = time.perf_counter()
        for i in range(N_NOOP_CALLS):
            flightrec.record("bench.append", value=i)
        append_us = (time.perf_counter() - t0) / N_NOOP_CALLS * 1e6
        assert len(flightrec.recorder()) == 512  # ring stayed bounded
    finally:
        flightrec.disable()
        flightrec.recorder().clear()

    overhead = t_enabled / t_disabled
    results["flightrec"] = {
        "n_jobs": N_JOBS,
        "repeats": REPEATS,
        "wall_s_disabled": round(t_disabled, 4),
        "wall_s_enabled": round(t_enabled, 4),
        "overhead_enabled_vs_disabled": round(overhead, 4),
        "disabled_record_us_per_call": round(noop_us, 4),
        "enabled_append_us_per_call": round(append_us, 4),
    }

    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data.update(results)
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")

    assert overhead <= OVERHEAD_LIMIT, (
        f"enabled flight recorder costs {overhead:.3f}x on the sched "
        f"workload (gate {OVERHEAD_LIMIT}x)")
    assert noop_us <= MAX_NOOP_US_PER_CALL, (
        f"disabled flightrec.record() costs {noop_us:.2f} µs/call")
