"""Figure 6: XGBoost feature importances (average gain).

Paper: branch intensity is the most important feature, followed by the
integer-arithmetic and single-FP intensities (the CPU-vs-GPU
discriminators); the source-architecture indicators (Ruby, Lassen,
Uses GPU) come next; L2 store misses lead the magnitude features.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import feature_importance_study

from conftest import report


def test_fig6_feature_importance(benchmark, bench_dataset):
    frame = benchmark.pedantic(
        lambda: feature_importance_study(bench_dataset, seed=42),
        rounds=1, iterations=1,
    )
    report(
        "fig6_feature_importance",
        "Fig. 6 — XGBoost feature importances (average gain)",
        frame,
        paper_notes="paper: branch intensity top; integer & single-FP "
                    "intensity next; then source-arch indicators",
    )
    features = [str(f) for f in frame["feature"]]
    importance = dict(zip(features, frame["importance"]))
    assert abs(sum(importance.values()) - 1.0) < 1e-9

    # Instruction-mix discriminators (the paper's top group) must carry
    # real signal: the best of them ranks in the top half and together
    # they hold a non-trivial share of total gain.  (Exact ranking
    # differs from the paper — see EXPERIMENTS.md: in this simulator the
    # uses-GPU indicator absorbs the regime split that branch intensity
    # proxies for in the paper's data.)
    ranks = {f: i for i, f in enumerate(features)}
    mix = ("branch_intensity", "int_intensity", "fp_sp_intensity",
           "fp_dp_intensity", "load_intensity", "store_intensity")
    assert min(ranks[f] for f in mix) < len(features) // 2
    assert sum(importance[f] for f in mix) > 0.02

    # The measurement-context group (uses_gpu + one-hot architecture),
    # which the paper ranks 4th-6th, must be highly ranked here too.
    context = ("uses_gpu", "arch_quartz", "arch_ruby", "arch_lassen",
               "arch_corona")
    assert min(ranks[f] for f in context) < 6
