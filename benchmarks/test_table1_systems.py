"""Table I: descriptions of the four systems.

Regenerates the system table from the machine models and times the
machine-model construction path (trivially fast; included so every
table/figure has a bench target).
"""

from __future__ import annotations

from repro.arch import MACHINES, SYSTEM_ORDER
from repro.frame import Frame

from conftest import report


def _build_table() -> Frame:
    return Frame.from_records(
        [MACHINES[name].describe() for name in SYSTEM_ORDER]
    )


def test_table1_systems(benchmark):
    frame = benchmark(_build_table)
    report(
        "table1_systems",
        "Table I — Description of the four systems and their hardware",
        frame,
        paper_notes="Quartz/Ruby CPU-only Intel Xeon; Lassen Power9+4xV100; "
                    "Corona AMD Rome+8xMI50",
    )
    assert frame.num_rows == 4
    assert list(frame["System"]) == list(SYSTEM_ORDER)
