"""Table II: the 20 applications and their GPU support."""

from __future__ import annotations

from repro.apps import APPLICATIONS, GPU_APPS
from repro.frame import Frame

from conftest import report


def _build_table() -> Frame:
    return Frame.from_records(
        [
            {
                "Application": app.name,
                "Description": app.description,
                "GPU": "yes" if app.gpu_support else "no",
            }
            for _, app in sorted(APPLICATIONS.items())
        ]
    )


def test_table2_applications(benchmark):
    frame = benchmark(_build_table)
    report(
        "table2_applications",
        "Table II — Applications in the MP-HPC dataset",
        frame,
        paper_notes="20 applications, 11 with GPU support",
    )
    assert frame.num_rows == 20
    assert sum(1 for g in frame["GPU"] if g == "yes") == len(GPU_APPS) == 11
