"""Figure 9 (extension): scheduling onto a machine the model never saw.

Leave-one-machine-out acceptance experiment for the descriptor-
conditioned stack: the zero-shot head trains with Corona **completely
absent** (neither source nor target rows), then schedules a workload
that includes Corona using only Corona's machine descriptor.  The
claim being validated: descriptor-conditioned placement beats blind
round-robin on the held-out machine, and the risk-aware strategy —
which widens its tie margin by the head's own predictive spread — is
no worse than trusting the zero-shot point estimates outright.

This is the generalization mode the fixed 4-slot RPV head cannot even
attempt: its output dimensions ARE the training machines.
"""

from __future__ import annotations

import numpy as np

from repro.arch.descriptor import descriptor_from_spec
from repro.arch.machines import MACHINES, SYSTEM_ORDER
from repro.core.zeroshot import DescriptorConditionedPredictor
from repro.dataset.longform import build_longform
from repro.frame import Frame
from repro.sched import ReplicaSpec, makespan, run_replicas
from repro.workloads import build_workload

from conftest import PAPER_SCALE, report

HOLDOUT = "Corona"
N_JOBS = 20_000 if PAPER_SCALE else 5_000
STRATEGIES = ("round_robin", "model", "risk-aware", "oracle")


class ZeroShotRPVAdapter:
    """Presents the descriptor-conditioned head through the 4-slot
    predictor interface :func:`build_workload` expects.

    ``predict`` returns each job's rel-time against every machine in
    canonical order — same smaller-is-faster semantics the strategies
    argsort, so the whole scheduling stack runs unmodified on zero-shot
    scores (including for the machine the head never trained on).
    """

    def __init__(self, head: DescriptorConditionedPredictor):
        self.head = head
        self.descriptors = [
            descriptor_from_spec(MACHINES[name]) for name in SYSTEM_ORDER
        ]

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.head.predict_wide(X, self.descriptors)

    def predict_with_uncertainty(self, X):
        return self.head.predict_wide_with_uncertainty(X, self.descriptors)


def _train_holdout_head(dataset) -> DescriptorConditionedPredictor:
    longform = build_longform(dataset).exclude_machine(HOLDOUT)
    return DescriptorConditionedPredictor.train(
        longform, n_estimators=80, max_depth=5, n_quantile_rounds=40,
    )


def _run_all(dataset):
    head = _train_holdout_head(dataset)
    assert HOLDOUT not in head.train_targets
    jobs = build_workload(dataset, n_jobs=N_JOBS, seed=9,
                          predictor=ZeroShotRPVAdapter(head),
                          with_uncertainty=True)
    specs = [ReplicaSpec(strategy=name, seed=11, label=name)
             for name in STRATEGIES]
    results = run_replicas(list(jobs), specs, workers=1)
    rows = []
    for name, result in zip(STRATEGIES, results):
        rows.append({
            "strategy": name,
            "makespan_hours": makespan(result) / 3600.0,
            "backfilled": result.backfilled,
        })
    return Frame.from_records(rows), jobs


def test_fig9_holdout_machine(benchmark, bench_dataset):
    frame, jobs = benchmark.pedantic(
        lambda: _run_all(bench_dataset), rounds=1, iterations=1,
    )
    spans = dict(zip(frame["strategy"], frame["makespan_hours"]))
    frame = frame.with_column(
        "reduction_vs_rr",
        [1 - s / spans["round_robin"] for s in frame["makespan_hours"]],
    )
    # Per-machine predictive spread — largest on the held-out machine
    # is the expected (not asserted) shape; what IS load-bearing is
    # that every job carries a finite non-null spread for Corona.
    stds = np.vstack([job.rpv_std for job in jobs])
    holdout_idx = list(SYSTEM_ORDER).index(HOLDOUT)
    assert np.isfinite(stds[:, holdout_idx]).all()
    spread_note = ", ".join(
        f"{name}={stds[:, i].mean():.3f}"
        for i, name in enumerate(SYSTEM_ORDER)
    )
    report(
        "fig9_holdout_machine",
        f"Fig. 9 (ext) — Makespan with {HOLDOUT} held out of training "
        f"({N_JOBS} jobs, zero-shot descriptors)",
        frame,
        paper_notes="extension: leave-one-machine-out; mean rel-time "
                    f"spread per machine: {spread_note}",
    )
    # The acceptance bar: descriptor-conditioned placement (point
    # estimates or risk-aware) beats blind round-robin even though one
    # of the four machines was never in the training set.
    assert spans["model"] < spans["round_robin"]
    assert spans["risk-aware"] < spans["round_robin"]
    # And trusting spreads must not cost more than a small overhead
    # relative to trusting the point estimates blindly.
    assert spans["risk-aware"] <= spans["model"] * 1.10
