"""Extension benchmark: workflow (task-DAG) placement.

The paper's introduction motivates cross-architecture prediction with
*workflows*; its evaluation stops at independent jobs.  This benchmark
completes the story: ensemble workflows (setup -> members -> analysis)
whose tasks are placed per-task by the model, versus the
single-allocation user who runs everything on one machine.
"""

from __future__ import annotations

import numpy as np

from repro.arch import MACHINES, SYSTEM_ORDER
from repro.frame import Frame
from repro.workloads.workflow import (
    WorkflowTask,
    critical_path_lower_bound,
    make_ensemble_workflow,
    schedule_workflow,
)

from conftest import report


def _workflow_from_dataset(dataset, predictor, seed):
    """Build an ensemble workflow out of sampled dataset groups."""
    rng = np.random.default_rng(seed)
    groups = dataset.group_labels()
    uniq = np.unique(groups.astype(str))
    machine_col = np.array([str(m) for m in dataset.frame["machine"]])
    times = np.asarray(dataset.frame["time_seconds"], dtype=np.float64)
    X = dataset.X()

    def sample_task(label):
        g = uniq[int(rng.integers(len(uniq)))]
        rows = np.flatnonzero(groups == g)
        runtimes = {machine_col[r]: float(times[r]) for r in rows}
        source = rows[int(rng.integers(len(rows)))]
        rpv = predictor.predict(X[source: source + 1])[0]
        return WorkflowTask(name=label, runtimes=runtimes, rpv=rpv)

    setup = sample_task("setup")
    members = [sample_task(f"member_{i}") for i in range(8)]
    analysis = sample_task("analysis")
    return make_ensemble_workflow(setup, members, analysis)


def _compare(dataset, predictor):
    rows = []
    for trial in range(5):
        workflow = _workflow_from_dataset(dataset, predictor, seed=trial)
        single = schedule_workflow(workflow, policy="first_machine",
                                   nodes_per_machine=2)
        model = schedule_workflow(workflow, policy="model",
                                  nodes_per_machine=2)
        oracle = schedule_workflow(workflow, policy="best_true",
                                   nodes_per_machine=2)
        rows.append(
            {
                "workflow": trial,
                "single_machine_s": single.makespan,
                "model_s": model.makespan,
                "oracle_s": oracle.makespan,
                "critical_path_s": critical_path_lower_bound(workflow),
            }
        )
    return Frame.from_records(rows)


def test_ext_workflow_placement(benchmark, bench_dataset, bench_predictor):
    frame = benchmark.pedantic(
        lambda: _compare(bench_dataset, bench_predictor),
        rounds=1, iterations=1,
    )
    report(
        "ext_workflow",
        "Extension — ensemble-workflow makespan per placement policy",
        frame,
        paper_notes="the paper's Section I motivation, completed: "
                    "per-task model placement vs single-cluster execution",
    )
    single = np.asarray(frame["single_machine_s"])
    model = np.asarray(frame["model_s"])
    oracle = np.asarray(frame["oracle_s"])
    bound = np.asarray(frame["critical_path_s"])
    # Model placement beats single-machine execution on average...
    assert model.mean() < single.mean()
    # ...tracks the oracle closely...
    assert model.mean() < 1.3 * oracle.mean()
    # ...and never beats the critical-path bound.
    assert (model >= bound - 1e-9).all()
