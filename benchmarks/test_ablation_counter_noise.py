"""Ablation: GPU-profiling counter noise vs per-source accuracy.

Quantifies the mechanism behind the paper's Fig. 3 claim ("we
hypothesize that the CPU performance metrics give better predictions
due to the maturity of CPU performance counters and the profiling tools
used to record them"): sweeping the GPU systems' counter-noise sigma
shows GPU-source accuracy degrading while CPU-source accuracy holds.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import counter_noise_sensitivity_study

from conftest import report

LIGHT = {"n_estimators": 120, "max_depth": 7}


def test_ablation_counter_noise(benchmark):
    frame = benchmark.pedantic(
        lambda: counter_noise_sensitivity_study(
            noise_scales=(0.25, 1.0, 4.0), inputs_per_app=6,
            model_kwargs=LIGHT,
        ),
        rounds=1, iterations=1,
    )
    report(
        "ablation_counter_noise",
        "Ablation — GPU counter-noise scale vs per-source XGBoost MAE",
        frame,
        paper_notes="Section VIII-B mechanism: noisier GPU profiling "
                    "degrades GPU-source predictions; CPU-source is "
                    "unaffected",
    )
    scales = np.asarray(frame["gpu_noise_scale"])
    sources = np.array([str(s) for s in frame["source"]])
    mae = np.asarray(frame["mae"])

    gpu = mae[sources == "gpu_source"]
    gpu_scales = scales[sources == "gpu_source"]
    order = np.argsort(gpu_scales)
    # GPU-source error grows with GPU profiling noise...
    assert gpu[order][-1] > gpu[order][0]
    # ...while CPU-source error stays within a narrow band.
    cpu = mae[sources == "cpu_source"]
    assert cpu.max() < 1.35 * cpu.min()
