"""Ablation: retraining on the top-k features (Section VI-B).

"After training we select the best set of features using those reported
by XGBoost and the decision forest ...  These features are then used to
re-train all the models again."  The paper notes feature selection
mainly buys cheaper future data collection; accuracy should degrade
gracefully as k shrinks.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import select_top_features, train_model
from repro.frame import Frame

from conftest import report

K_VALUES = (21, 12, 8, 4)
LIGHT = {"n_estimators": 200, "max_depth": 8}


def _sweep(dataset):
    full = train_model(dataset, model="xgboost", seed=42, run_cv=False,
                       **LIGHT)
    rows = [{"k_features": 21, "mae": full.test_mae, "sos": full.test_sos}]
    for k in K_VALUES[1:]:
        columns = select_top_features(full, k=k)
        trained = train_model(dataset, model="xgboost", seed=42,
                              run_cv=False, feature_columns=columns,
                              **LIGHT)
        rows.append({"k_features": k, "mae": trained.test_mae,
                     "sos": trained.test_sos})
    return Frame.from_records(rows)


def test_ablation_feature_selection(benchmark, bench_dataset):
    frame = benchmark.pedantic(
        lambda: _sweep(bench_dataset), rounds=1, iterations=1
    )
    report(
        "ablation_feature_selection",
        "Ablation — retraining on the top-k gain-ranked features",
        frame,
        paper_notes="Section VI-B: feature selection has negligible impact "
                    "on training time but identifies what to collect; "
                    "accuracy should hold with the top features",
    )
    mae = np.asarray(frame["mae"])
    # The top-12 features retain essentially all of the accuracy
    # (Section VI-B's "negligible impact")…
    assert mae[1] < 1.15 * mae[0]
    # …top-8 degrade gracefully…
    assert mae[2] < 2.0 * mae[0]
    # …and even 4 features stay at or below mean-baseline error.
    from repro.core.pipeline import train_model
    mean_mae = train_model(bench_dataset, model="mean", seed=42,
                           run_cv=False).test_mae
    assert mae[-1] <= mean_mae * 1.05
