"""Shared benchmark fixtures and result reporting.

Every benchmark regenerates one of the paper's tables or figures and
writes the reproduced rows/series to ``benchmarks/results/<name>.txt``
(also echoed to stdout) so the paper-vs-measured comparison in
EXPERIMENTS.md can be refreshed from a single run.

Scale: by default the dataset uses 12 inputs per application (2,880
rows) so the full harness completes in minutes.  Set
``REPRO_PAPER_SCALE=1`` to use the paper-scale 47 inputs per app
(11,280 rows; the paper's MP-HPC has 11,312).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.predictor import CrossArchPredictor
from repro.dataset.generate import generate_dataset
from repro.frame import Frame
from repro.ml import train_test_split

RESULTS_DIR = Path(__file__).parent / "results"

PAPER_SCALE = os.environ.get("REPRO_PAPER_SCALE", "") == "1"
INPUTS_PER_APP = 47 if PAPER_SCALE else 12
BENCH_SEED = 20240501


@pytest.fixture(scope="session")
def bench_dataset():
    """The MP-HPC dataset used by every benchmark."""
    return generate_dataset(inputs_per_app=INPUTS_PER_APP, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_split(bench_dataset):
    return train_test_split(bench_dataset.num_rows, 0.1, random_state=42)


@pytest.fixture(scope="session")
def bench_predictor(bench_dataset, bench_split):
    """The paper's best model, trained once on the 90% split."""
    train_rows, _ = bench_split
    return CrossArchPredictor.train(
        bench_dataset, model="xgboost", rows=train_rows
    )


def report(name: str, title: str, frame: Frame,
           paper_notes: str = "") -> None:
    """Persist and print one reproduced table/figure."""
    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [f"# {title}", ""]
    if paper_notes:
        lines += [f"Paper reference: {paper_notes}", ""]
    cols = frame.columns
    widths = [
        max(len(c), *(len(_fmt(frame[c][i])) for i in range(frame.num_rows)))
        for c in cols
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for i in range(frame.num_rows):
        lines.append(
            "  ".join(_fmt(frame[c][i]).ljust(w) for c, w in zip(cols, widths))
        )
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


# -- scheduling/inference perf trajectory (BENCH_sched.json) -----------

BENCH_SCHED_PATH = Path(__file__).parent / "BENCH_sched.json"

#: Benchmarks whose wall time is folded into BENCH_sched.json so the
#: perf harness tracks the end-to-end scheduling studies too.
_TRACKED_WALLTIMES = {
    "test_fig7_makespan": "fig7_wall_s",
    "test_fig8_bounded_slowdown": "fig8_wall_s",
}


def record_bench(updates: dict) -> None:
    """Merge *updates* into ``BENCH_sched.json`` (read-modify-write, so
    the sched microbenchmark and the fig7/fig8 wall-time hook can land
    entries from separate pytest invocations)."""
    data = {}
    if BENCH_SCHED_PATH.exists():
        data = json.loads(BENCH_SCHED_PATH.read_text())
    data.update(updates)
    BENCH_SCHED_PATH.write_text(json.dumps(data, indent=2) + "\n")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    rep = outcome.get_result()
    key = _TRACKED_WALLTIMES.get(item.name)
    if key and rep.when == "call" and rep.passed:
        record_bench({key: round(rep.duration, 2)})
