"""Extension benchmark: a sweep campaign, cold vs. memoized.

Runs a small profile grid (applications x machines) through the
crash-safe sweep orchestrator twice from the same run root: the cold
pass computes every cell in isolated workers, the warm pass must plan
every cell as *cached* (artifact memoization) and recompute nothing.
Records wall times and the per-cell cost, and asserts the memoization
and report-determinism contracts on the way.
"""

from __future__ import annotations

import time

from conftest import report

from repro.frame import Frame
from repro.resilience.retry import RetryPolicy
from repro.sweep import (
    SweepRunner,
    SweepSpec,
    build_report,
    plan_sweep,
    write_report,
)

SPEC = SweepSpec(
    name="campaign",
    command="profile",
    base={"scale": "1node", "seed": 0},
    axes={"app": ["AMG", "XSBench", "miniFE"],
          "machine": ["Quartz", "Lassen"]},
)


def _sweep(root, *, resume: bool):
    start = time.perf_counter()
    plan = plan_sweep(SPEC, root, resume=resume)
    runner = SweepRunner(
        plan, jobs=2,
        retry=RetryPolicy(max_attempts=2, backoff_base=0.05, jitter=0.0),
    )
    result = runner.run()
    write_report(build_report(SPEC, root), root)
    return result, time.perf_counter() - start


def test_ext_sweep_campaign(tmp_path):
    root = tmp_path / "root"
    cold, t_cold = _sweep(root, resume=False)
    report_bytes = (root / "sweep_report.json").read_bytes()
    warm, t_warm = _sweep(root, resume=True)

    cells = len(cold.outcomes)
    assert cold.ok and cold.counts["done"] == cells
    # Memoization contract: the warm pass computes nothing and the
    # report (a pure function of the verified artifacts) is unchanged.
    assert warm.counts == {"done": 0, "cached": cells, "quarantined": 0}
    assert (root / "sweep_report.json").read_bytes() == report_bytes

    frame = Frame({
        "pass": ["cold (jobs=2)", "warm (memoized)"],
        "cells": [cells, cells],
        "computed": [cold.counts["done"], warm.counts["done"]],
        "wall_s": [t_cold, t_warm],
        "per_cell_s": [t_cold / cells, t_warm / cells],
    })
    report(
        "ext_sweep_campaign",
        "Sweep campaign: cold vs. memoized rerun "
        f"({cells} profile cells)",
        frame,
        paper_notes="extension (crash-safe orchestration of the paper's "
                    "evaluation grid); no paper counterpart",
    )
    assert t_warm < t_cold
