"""Ablation: the paper's RPV target vs predicting absolute runtimes.

The paper's central representational choice (Section IV) is to predict
*relative* performance vectors rather than absolute times.  This bench
compares the default RPV target against an absolute-time pipeline that
predicts log-runtimes for all four systems and derives the RPV from the
predicted times.  RPVs cancel the app/input-specific magnitude, so they
should be the easier target.
"""

from __future__ import annotations

import numpy as np

from repro.arch import SYSTEM_ORDER
from repro.frame import Frame
from repro.ml import (
    GradientBoostedTrees,
    mean_absolute_error,
    same_order_score,
    train_test_split,
)

from conftest import report


def _times_matrix(dataset) -> np.ndarray:
    """(rows, 4) matrix of the group's runtime on each system."""
    groups = dataset.group_labels()
    machine = np.array([str(m) for m in dataset.frame["machine"]])
    times = np.asarray(dataset.frame["time_seconds"], dtype=np.float64)
    sys_index = {s: i for i, s in enumerate(SYSTEM_ORDER)}
    out = np.empty((dataset.num_rows, 4))
    by_group: dict[str, np.ndarray] = {}
    for i, g in enumerate(groups):
        if g not in by_group:
            by_group[g] = np.empty(4)
        by_group[g][sys_index[machine[i]]] = times[i]
    for i, g in enumerate(groups):
        out[i] = by_group[g]
    return out


def _compare(dataset):
    X, Y = dataset.X(), dataset.Y()
    T = _times_matrix(dataset)
    tr, te = train_test_split(len(X), 0.1, random_state=42)
    kwargs = dict(n_estimators=200, max_depth=8, learning_rate=0.08,
                  multi_strategy="multi_output_tree", random_state=42)

    rpv_model = GradientBoostedTrees(**kwargs).fit(X[tr], Y[tr])
    rpv_pred = rpv_model.predict(X[te])

    time_model = GradientBoostedTrees(**kwargs).fit(X[tr], np.log(T[tr]))
    pred_times = np.exp(time_model.predict(X[te]))
    derived_rpv = pred_times / pred_times.max(axis=1, keepdims=True)

    rows = [
        {
            "target": "rpv (paper)",
            "rpv_mae": mean_absolute_error(Y[te], rpv_pred),
            "rpv_sos": same_order_score(Y[te], rpv_pred),
        },
        {
            "target": "log-absolute-times",
            "rpv_mae": mean_absolute_error(Y[te], derived_rpv),
            "rpv_sos": same_order_score(Y[te], derived_rpv),
        },
    ]
    return Frame.from_records(rows)


def test_ablation_rpv_vs_absolute_target(benchmark, bench_dataset):
    frame = benchmark.pedantic(
        lambda: _compare(bench_dataset), rounds=1, iterations=1
    )
    report(
        "ablation_target",
        "Ablation — RPV target vs absolute-runtime target",
        frame,
        paper_notes="the RPV representation (Section IV) is the paper's "
                    "key choice; direct RPV prediction should not lose to "
                    "the absolute-time detour",
    )
    mae = dict(zip(frame["target"], frame["rpv_mae"]))
    assert mae["rpv (paper)"] <= mae["log-absolute-times"] * 1.2
