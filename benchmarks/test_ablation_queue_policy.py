"""Ablation: the R1 queue policy of Algorithm 1.

The paper instantiates Algorithm 1's queue policy R1 as FCFS.  This
bench sweeps the policy family under model-based machine assignment on
a contended cluster: SJF should improve average bounded slowdown (the
classic result) while makespan stays roughly flat.
"""

from __future__ import annotations

from repro.frame import Frame
from repro.sched import (
    Scheduler,
    average_bounded_slowdown,
    makespan,
    policy_by_name,
    strategy_by_name,
)
from repro.sched.machines import ClusterState
from repro.workloads import build_workload

from conftest import report

N_JOBS = 6000
SMALL_CLUSTER = {"Quartz": 60, "Ruby": 30, "Lassen": 16, "Corona": 8}
POLICIES = ("fcfs", "sjf", "ljf", "widest", "smallest")


def _sweep(dataset, predictor):
    jobs = build_workload(dataset, n_jobs=N_JOBS, seed=23,
                          predictor=predictor)
    rows = []
    for policy_name in POLICIES:
        result = Scheduler(
            strategy_by_name("model"),
            ClusterState(dict(SMALL_CLUSTER)),
            queue_policy=policy_by_name(policy_name),
            backfill_policy=policy_by_name(policy_name),
        ).run(list(jobs))
        rows.append(
            {
                "policy": policy_name,
                "makespan_hours": makespan(result) / 3600.0,
                "avg_bounded_slowdown": average_bounded_slowdown(result),
            }
        )
    return Frame.from_records(rows)


def test_ablation_queue_policy(benchmark, bench_dataset, bench_predictor):
    frame = benchmark.pedantic(
        lambda: _sweep(bench_dataset, bench_predictor),
        rounds=1, iterations=1,
    )
    report(
        "ablation_queue_policy",
        f"Ablation — Algorithm 1 R1/R2 queue policy ({N_JOBS} jobs, "
        "small cluster)",
        frame,
        paper_notes="the paper uses FCFS for both R1 and R2; SJF is the "
                    "classic slowdown optimization",
    )
    slow = dict(zip(frame["policy"], frame["avg_bounded_slowdown"]))
    spans = dict(zip(frame["policy"], frame["makespan_hours"]))
    # SJF improves responsiveness over FCFS...
    assert slow["sjf"] < slow["fcfs"]
    # ...and LJF damages it.
    assert slow["ljf"] > slow["sjf"]
    # Makespan stays within a modest band across policies (work is
    # conserved; only ordering changes).
    assert max(spans.values()) < 1.5 * min(spans.values())
