"""Figure 4: XGBoost trained on two run scales, evaluated on the third.

Paper: all three holdouts score close to 0.11 MAE, with the 1-node
holdout best.  The reproduction asserts the robust part of that shape:
holdout error stays within a modest factor of the in-distribution error
(the representation transfers across scales).
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import model_comparison_study, scale_holdout_study

from conftest import report


def test_fig4_scale_holdout(benchmark, bench_dataset):
    frame = benchmark.pedantic(
        lambda: scale_holdout_study(bench_dataset, seed=42),
        rounds=1, iterations=1,
    )
    report(
        "fig4_scale_holdout",
        "Fig. 4 — XGBoost MAE with one run scale held out",
        frame,
        paper_notes="paper: ~0.11 MAE for each of 1-core / 1-node / 2-node "
                    "holdouts (1-node best)",
    )
    mae = np.asarray(frame["mae"])
    assert len(mae) == 3
    assert (mae > 0).all()
    # Transfers across scales: no holdout catastrophically worse than
    # the best one.
    assert mae.max() < 5 * mae.min()
