"""Ablation: EASY backfilling on vs off (Algorithm 1 lines 9-16).

FCFS with EASY backfilling is the paper's scheduling baseline; this
bench quantifies what backfilling itself contributes under the
model-based assignment.
"""

from __future__ import annotations

from repro.frame import Frame
from repro.sched import (
    Scheduler,
    average_bounded_slowdown,
    makespan,
    strategy_by_name,
)
from repro.sched.machines import ClusterState
from repro.workloads import build_workload

from conftest import report

N_JOBS = 6000
#: A deliberately small cluster so the queue actually backs up and
#: backfilling has gaps to fill.
SMALL_CLUSTER = {"Quartz": 60, "Ruby": 30, "Lassen": 16, "Corona": 8}


def _compare(dataset, predictor):
    jobs = build_workload(dataset, n_jobs=N_JOBS, seed=17,
                          predictor=predictor)
    rows = []
    for strategy_name in ("model", "round_robin"):
        for backfill in (True, False):
            result = Scheduler(
                strategy_by_name(strategy_name, seed=3),
                ClusterState(dict(SMALL_CLUSTER)),
                backfill=backfill,
            ).run(list(jobs))
            rows.append(
                {
                    "strategy": strategy_name,
                    "backfill": "EASY" if backfill else "off",
                    "makespan_hours": makespan(result) / 3600.0,
                    "avg_bounded_slowdown": average_bounded_slowdown(result),
                    "backfilled_jobs": result.backfilled,
                }
            )
    return Frame.from_records(rows)


def test_ablation_easy_backfill(benchmark, bench_dataset, bench_predictor):
    frame = benchmark.pedantic(
        lambda: _compare(bench_dataset, bench_predictor),
        rounds=1, iterations=1,
    )
    report(
        "ablation_backfill",
        "Ablation — EASY backfilling on/off (small cluster, "
        f"{N_JOBS} jobs)",
        frame,
        paper_notes="the paper's Algorithm 1 uses FCFS+EASY; this isolates "
                    "the backfilling contribution",
    )
    recs = frame.to_records()
    by_key = {(r["strategy"], r["backfill"]): r for r in recs}
    for strategy in ("model", "round_robin"):
        assert by_key[(strategy, "EASY")]["backfilled_jobs"] > 0
    # For blind placement, EASY recovers a large chunk of wasted nodes.
    rr_on = by_key[("round_robin", "EASY")]
    rr_off = by_key[("round_robin", "off")]
    assert rr_on["makespan_hours"] < rr_off["makespan_hours"]
    assert rr_on["avg_bounded_slowdown"] < rr_off["avg_bounded_slowdown"]
    # For model-based placement backfilling is roughly neutral: a
    # backfilled job may run on a sub-optimal (fallback) machine, which
    # trades per-job runtime for utilization.  It must stay within 10%.
    m_on = by_key[("model", "EASY")]
    m_off = by_key[("model", "off")]
    assert m_on["makespan_hours"] <= m_off["makespan_hours"] * 1.10
