"""Ablation: histogram resolution of the boosting split finder.

The from-scratch XGBoost equivalent uses quantile-binned histogram
splits (DESIGN.md §6).  This bench sweeps the bin count and reports the
accuracy/time trade-off; 64 bins (the default) should be on the flat
part of the accuracy curve.
"""

from __future__ import annotations

import time

import numpy as np

from repro.frame import Frame
from repro.ml import GradientBoostedTrees, mean_absolute_error, train_test_split

from conftest import report

BIN_COUNTS = (8, 16, 64, 128)


def _sweep(dataset):
    X, Y = dataset.X(), dataset.Y()
    tr, te = train_test_split(len(X), 0.1, random_state=42)
    rows = []
    for n_bins in BIN_COUNTS:
        t0 = time.perf_counter()
        model = GradientBoostedTrees(
            n_estimators=150, max_depth=8, learning_rate=0.08,
            n_bins=n_bins, multi_strategy="multi_output_tree",
            random_state=42,
        ).fit(X[tr], Y[tr])
        fit_seconds = time.perf_counter() - t0
        mae = mean_absolute_error(Y[te], model.predict(X[te]))
        rows.append({"n_bins": n_bins, "mae": mae,
                     "fit_seconds": fit_seconds})
    return Frame.from_records(rows)


def test_ablation_histogram_bins(benchmark, bench_dataset):
    frame = benchmark.pedantic(
        lambda: _sweep(bench_dataset), rounds=1, iterations=1
    )
    report(
        "ablation_bins",
        "Ablation — histogram bin count vs accuracy and fit time",
        frame,
        paper_notes="design choice of this reproduction (XGBoost 'hist' "
                    "equivalent); accuracy should saturate by 64 bins",
    )
    mae = np.asarray(frame["mae"])
    # 64 bins within 15% of the best MAE in the sweep.
    best = mae.min()
    mae_64 = mae[list(frame["n_bins"]).index(64)]
    assert mae_64 <= best * 1.15
