"""Extension benchmark: uncertainty-aware machine assignment.

Beyond the paper: when two machines' predicted RPVs are within the
model's error, the prediction cannot reliably separate them, so the
:class:`UncertaintyAwareStrategy` breaks such near-ties by current
machine load instead.  On a contended cluster this trades a little
per-job runtime for less queueing.
"""

from __future__ import annotations

from repro.frame import Frame
from repro.sched import (
    Scheduler,
    average_bounded_slowdown,
    makespan,
    strategy_by_name,
)
from repro.sched.machines import ClusterState
from repro.workloads import build_workload

from conftest import report

N_JOBS = 6000
SMALL_CLUSTER = {"Quartz": 60, "Ruby": 30, "Lassen": 16, "Corona": 8}


def _compare(dataset, predictor):
    jobs = build_workload(dataset, n_jobs=N_JOBS, seed=31,
                          predictor=predictor)
    rows = []
    for name in ("model", "uncertainty", "oracle"):
        result = Scheduler(
            strategy_by_name(name),
            ClusterState(dict(SMALL_CLUSTER)),
        ).run(list(jobs))
        rows.append(
            {
                "strategy": name,
                "makespan_hours": makespan(result) / 3600.0,
                "avg_bounded_slowdown": average_bounded_slowdown(result),
            }
        )
    return Frame.from_records(rows)


def test_ext_uncertainty_strategy(benchmark, bench_dataset, bench_predictor):
    frame = benchmark.pedantic(
        lambda: _compare(bench_dataset, bench_predictor),
        rounds=1, iterations=1,
    )
    report(
        "ext_uncertainty_strategy",
        f"Extension — tie-aware assignment on a contended cluster "
        f"({N_JOBS} jobs)",
        frame,
        paper_notes="near-tied predictions are broken by machine load "
                    "rather than trusted blindly",
    )
    vals = {
        str(s): (m, b) for s, m, b in zip(
            frame["strategy"], frame["makespan_hours"],
            frame["avg_bounded_slowdown"],
        )
    }
    # The tie-aware variant must not be worse than plain model-based on
    # both metrics simultaneously (it trades one for the other at most).
    worse_makespan = vals["uncertainty"][0] > vals["model"][0] * 1.05
    worse_slowdown = vals["uncertainty"][1] > vals["model"][1] * 1.05
    assert not (worse_makespan and worse_slowdown)