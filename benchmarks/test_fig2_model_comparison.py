"""Figure 2: MAE (left) and SOS (right) of the four models.

Paper: XGBoost best with MAE 0.11 and SOS 0.86; decision forest close
behind; the linear model beats the mean baseline on MAE but is worst on
SOS; XGBoost's MAE is an 81.6% improvement over mean prediction.
"""

from __future__ import annotations

from repro.core.evaluation import model_comparison_study

from conftest import BENCH_SEED, report


def test_fig2_model_comparison(benchmark, bench_dataset):
    frame = benchmark.pedantic(
        lambda: model_comparison_study(bench_dataset, seed=42),
        rounds=1, iterations=1,
    )
    by_model = {
        str(m): (mae, sos)
        for m, mae, sos in zip(frame["model"], frame["mae"], frame["sos"])
    }
    improvement = 1 - by_model["xgboost"][0] / by_model["mean"][0]
    frame = frame.with_column(
        "improvement_over_mean",
        [1 - mae / by_model["mean"][0] for mae in frame["mae"]],
    )
    report(
        "fig2_model_comparison",
        "Fig. 2 — Test-set MAE and SOS per model",
        frame,
        paper_notes="XGBoost MAE 0.11 / SOS 0.86; 81.6% improvement over "
                    "mean prediction; forest close second; linear worst SOS "
                    "among ML models",
    )
    # Shape assertions from the paper:
    assert by_model["xgboost"][0] < by_model["forest"][0]      # best MAE
    assert by_model["forest"][0] < by_model["linear"][0]
    assert by_model["linear"][0] < by_model["mean"][0]
    # SOS: the two tree ensembles are a statistical near-tie in this
    # simulator (the paper separates them slightly); assert XGBoost at
    # least ties the forest and decisively beats the non-tree models.
    assert by_model["xgboost"][1] >= by_model["forest"][1] - 0.05
    assert by_model["xgboost"][1] > 2 * by_model["linear"][1]
    assert by_model["xgboost"][1] > 2 * by_model["mean"][1]
    assert improvement > 0.5  # large improvement over the mean baseline
