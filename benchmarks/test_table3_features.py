"""Table III: features and their per-architecture source counters.

Regenerates the feature/counter mapping from the schemas and times the
feature-derivation pass over the whole dataset (the paper's Section V-D
pre-processing step).
"""

from __future__ import annotations

from repro.arch import CORONA, LASSEN, QUARTZ, RUBY
from repro.dataset import FEATURE_COLUMNS
from repro.dataset.features import RAW_FOR_MAGNITUDE, RATIO_SOURCES, derive_feature_frame
from repro.dataset.schema import FEATURE_LABELS
from repro.frame import Frame
from repro.profiler import schema_for

from conftest import report


def _counter_names(machine, gpu, field) -> str:
    schema = schema_for(machine, gpu)
    if schema.tcc is not None and field in ("l2_load_miss", "l2_store_miss"):
        return "+".join(schema.tcc.counter_names())
    rule = schema.rules[field]
    return "+".join(rule.counter_names())


def _build_table() -> Frame:
    raw_fields = {**RATIO_SOURCES, **RAW_FOR_MAGNITUDE}
    rows = []
    for feature in FEATURE_COLUMNS:
        if feature in raw_fields:
            field = raw_fields[feature]
            rows.append(
                {
                    "Feature": FEATURE_LABELS[feature],
                    "Quartz": _counter_names(QUARTZ, False, field),
                    "Ruby": _counter_names(RUBY, False, field),
                    "Lassen (GPU)": _counter_names(LASSEN, True, field),
                    "Corona (GPU)": _counter_names(CORONA, True, field),
                }
            )
        else:
            rows.append(
                {
                    "Feature": FEATURE_LABELS[feature],
                    "Quartz": "run config",
                    "Ruby": "run config",
                    "Lassen (GPU)": "run config",
                    "Corona (GPU)": "run config",
                }
            )
    return Frame.from_records(rows)


def test_table3_feature_sources(benchmark, bench_dataset):
    # Time the actual Section V-D derivation over the raw columns the
    # dataset retains (re-deriving features from a materialized frame).
    raw = bench_dataset.frame
    frame = _build_table()

    def materialize():
        # Cost of materializing the 21-feature matrix + targets from the
        # columnar dataset, the consumer-facing path of Section V-D.
        return bench_dataset.X(), bench_dataset.Y()

    benchmark(materialize)
    report(
        "table3_features",
        "Table III — Features and per-architecture source counters",
        frame,
        paper_notes="6 instruction ratios + 8 z-scored magnitudes + "
                    "nodes/cores/uses-GPU + one-hot architecture = 21 columns",
    )
    assert frame.num_rows == 21


def test_table3_derivation_full(benchmark, bench_dataset):
    """Times full feature derivation from raw records (fresh profile)."""
    from repro.apps import APPLICATIONS, generate_inputs
    from repro.hatchet_lite import run_record
    from repro.perfsim.config import make_run_config
    from repro.profiler import profile_run

    app = APPLICATIONS["AMG"]
    inp = generate_inputs(app, 1, seed=1)[0]
    config = make_run_config(app, QUARTZ, "1node")
    record = run_record(profile_run(app, inp, QUARTZ, config, seed=1))

    def derive_one():
        frame = Frame.from_records([record])
        out, _ = derive_feature_frame(
            frame, normalizer=bench_dataset.normalizer
        )
        return out

    out = benchmark(derive_one)
    for column in FEATURE_COLUMNS:
        assert column in out
