"""Figure 5: leave-one-application-out MAE for XGBoost.

Paper: the model generalizes to unseen applications, but the ML /
Python-based applications (CANDLE, CosmoFlow, miniGAN, DeepCam) score
notably worse, attributed to noisier runs and more complex software
stacks.
"""

from __future__ import annotations

import numpy as np

from repro.apps import ML_PYTHON_APPS
from repro.core.evaluation import app_holdout_study

from conftest import report


def test_fig5_app_holdout(benchmark, bench_dataset):
    frame = benchmark.pedantic(
        lambda: app_holdout_study(
            bench_dataset, seed=42,
            # Lighter trees: this study trains 20 models.
            model_kwargs={"n_estimators": 200, "max_depth": 8},
        ),
        rounds=1, iterations=1,
    )
    frame = frame.sort_values("mae", descending=True)
    report(
        "fig5_app_holdout",
        "Fig. 5 — XGBoost MAE with one application held out",
        frame,
        paper_notes="paper: worst holdout MAE on the ML/Python apps "
                    "(CANDLE, CosmoFlow, miniGAN, DeepCam)",
    )
    apps = np.array([str(a) for a in frame["held_out_app"]])
    mae = np.asarray(frame["mae"])
    assert len(apps) == 20

    ml_mean = mae[np.isin(apps, ML_PYTHON_APPS)].mean()
    other_mean = mae[~np.isin(apps, ML_PYTHON_APPS)].mean()
    # ML/Python apps are harder to generalize to (paper's observation).
    assert ml_mean > other_mean
