"""Microbenchmark: request-level observability overhead on ``/predict``.

The tentpole claim of the observability layer is that it is cheap
enough to leave on: per-request spans (``serve.request`` →
``serve.coalescer.batch`` → ``serve.predict``) plus id minting/echoing
must not meaningfully move end-to-end latency.  This benchmark holds
that to numbers: the same keep-alive load (the deterministic
``run_load`` driver, rate 0 = as fast as the pool allows) is fired at
an identical service with tracing off and with tracing on, back to
back on the same host, min-of-N per mode.

Recorded to ``benchmarks/BENCH_observability.json``:

* ``requests_per_sec`` and ``p50/p99`` per mode (absolute values are
  host-dependent — informational);
* ``trace_p99_ratio`` / ``trace_throughput_ratio`` — the same-host
  ratios that gate.

Gates: tracing-on p99 within :data:`TRACE_P99_RATIO_LIMIT` of
tracing-off, throughput within :data:`TRACE_THROUGHPUT_RATIO_LIMIT`,
plus the standard committed-baseline regression gate (a fresh
throughput below half its committed value fails).
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from repro import telemetry
from repro.serve import PredictionService, run_load

from test_perf_serve import _PreloadedManager

BENCH_PATH = Path(__file__).parent / "BENCH_observability.json"

N_REQUESTS = 200
REPEATS = 3
#: Tracing-on p99 may not exceed this multiple of tracing-off p99.
#: Generous: HTTP tail latency at this scale is scheduler-noise-bound,
#: and the spans themselves cost microseconds.
TRACE_P99_RATIO_LIMIT = 3.0
#: Tracing-off throughput may not exceed this multiple of tracing-on.
TRACE_THROUGHPUT_RATIO_LIMIT = 1.5
#: A fresh throughput below half its committed value is a regression.
REGRESSION_FACTOR = 2.0


def _baseline() -> dict:
    if BENCH_PATH.exists():
        return json.loads(BENCH_PATH.read_text())
    return {}


def _drive(manager, payloads) -> dict:
    """Best-of-N load run against a fresh service; returns stats."""
    best_rps = 0.0
    best_p50 = best_p99 = float("inf")
    for _ in range(REPEATS):
        service = PredictionService(manager, max_batch=32,
                                    batch_deadline_s=0.002)

        async def run(service=service):
            host, port = await service.start(port=0)
            try:
                return await run_load(host, port, payloads,
                                      rate_per_second=0.0)
            finally:
                await service.stop()

        report = asyncio.run(run())
        assert report.ok == len(payloads), report.to_dict()
        best_rps = max(best_rps, report.requests_per_sec)
        best_p50 = min(best_p50, report.percentile_ms(50))
        best_p99 = min(best_p99, report.percentile_ms(99))
        # Bound span accumulation across repeats (spans are the point
        # of trace mode, but the benchmark only needs the latest run's).
        telemetry.reset()
    return {
        "requests_per_sec": round(best_rps, 1),
        "p50_ms": round(best_p50, 3),
        "p99_ms": round(best_p99, 3),
    }


def test_perf_observability(bench_dataset, bench_predictor):
    manager = _PreloadedManager(bench_predictor, bench_dataset)
    X = bench_dataset.X()
    payloads = [
        {"features": [float(v) for v in X[i % len(X)]],
         "request_id": f"req-bench-{i}", "trace_id": f"trace-bench-{i}"}
        for i in range(N_REQUESTS)
    ]

    results: dict = {"http_requests": N_REQUESTS, "repeats": REPEATS}
    try:
        telemetry.configure("off")
        telemetry.reset()
        # Warm both paths once (JIT-less, but import/alloc warmup real).
        _drive(manager, payloads[:16])
        results["tracing_off"] = _drive(manager, payloads)

        telemetry.configure("trace")
        telemetry.reset()
        # Prove the traced run actually records the request span tree
        # before trusting its timings.
        service = PredictionService(manager, max_batch=32,
                                    batch_deadline_s=0.002)

        async def probe():
            host, port = await service.start(port=0)
            try:
                return await run_load(host, port, payloads[:8],
                                      rate_per_second=0.0)
            finally:
                await service.stop()

        asyncio.run(probe())
        names = {record.name for record in telemetry.spans()}
        assert {"serve.request", "serve.predict",
                "serve.coalescer.batch"} <= names, names
        telemetry.reset()
        results["tracing_on"] = _drive(manager, payloads)
    finally:
        telemetry.configure("off")
        telemetry.reset()

    off, on = results["tracing_off"], results["tracing_on"]
    p99_ratio = on["p99_ms"] / off["p99_ms"]
    throughput_ratio = off["requests_per_sec"] / on["requests_per_sec"]
    results["trace_p99_ratio"] = round(p99_ratio, 3)
    results["trace_throughput_ratio"] = round(throughput_ratio, 3)

    baseline = _baseline()
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print("\n" + json.dumps(results, indent=2))

    assert p99_ratio <= TRACE_P99_RATIO_LIMIT, (
        f"tracing-on p99 {on['p99_ms']}ms is {p99_ratio:.2f}x "
        f"tracing-off {off['p99_ms']}ms (limit "
        f"{TRACE_P99_RATIO_LIMIT}x)")
    assert throughput_ratio <= TRACE_THROUGHPUT_RATIO_LIMIT, (
        f"tracing costs {throughput_ratio:.2f}x throughput (limit "
        f"{TRACE_THROUGHPUT_RATIO_LIMIT}x): off "
        f"{off['requests_per_sec']} rps vs on "
        f"{on['requests_per_sec']} rps")
    for mode in ("tracing_off", "tracing_on"):
        committed = (baseline.get(mode) or {}).get("requests_per_sec")
        if committed:
            fresh = results[mode]["requests_per_sec"]
            assert fresh >= committed / REGRESSION_FACTOR, (
                f"{mode} throughput regressed: {fresh} rps vs committed "
                f"{committed} (floor {committed / REGRESSION_FACTOR:.1f})")


def test_perf_id_minting():
    """Minting a request id must stay deep in no-op territory — it sits
    on every unlabeled request's hot path."""
    from repro.serve.protocol import mint_request_id

    n = 50_000
    t0 = time.perf_counter()
    for _ in range(n):
        mint_request_id()
    per_call_us = (time.perf_counter() - t0) / n * 1e6

    data = _baseline()
    data["mint_request_id_us_per_call"] = round(per_call_us, 4)
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")

    assert per_call_us < 25.0, (
        f"mint_request_id costs {per_call_us:.2f} µs/call")
