"""Extension: assignment strategies under injected failures.

The paper evaluates Algorithm 1 in a perfect world — no node ever
fails, no job ever crashes, every counter is readable.  This extension
re-runs the Fig. 7 strategy comparison in hostile worlds: the ``light``
and ``heavy`` fault profiles inject node failures (MTBF per machine),
job crashes, and counter corruption, with crashed jobs retried under
exponential backoff and corrupted counters served by the
:class:`~repro.resilience.ResilientPredictor` degradation chain.

Questions answered:

* Does the model-based strategy's advantage survive failures, or do
  retries and degraded predictions erase it?
* How much throughput (goodput) do crashes cost, and how much does
  checkpoint/restart recover?
"""

from __future__ import annotations

from repro.frame import Frame
from repro.resilience import (
    FAULT_PROFILES,
    CorruptingPredictor,
    FaultInjector,
    ResilientPredictor,
    RetryPolicy,
)
from repro.sched import (
    Scheduler,
    completed_fraction,
    goodput,
    makespan,
    retry_count,
    strategy_by_name,
    wasted_node_seconds,
)
from repro.sched.machines import ClusterState
from repro.workloads import build_workload

from conftest import BENCH_SEED, PAPER_SCALE, report

#: Jobs in the scheduling workload (Fig. 7 uses 50,000 at paper scale).
N_JOBS = 20_000 if PAPER_SCALE else 4_000
STRATEGIES = ("round_robin", "random", "user_rr", "model")
PROFILES = ("light", "heavy")


def _run_all(dataset, predictor):
    rows = []
    degraded = {}
    spans: dict[tuple[str, str], float] = {}
    for profile_name in PROFILES:
        profile = FAULT_PROFILES[profile_name]
        # Predictions degrade too: the injector corrupts each job's
        # counters before the resilient chain sees them.
        resilient = ResilientPredictor.from_training(predictor, dataset)
        corrupting = CorruptingPredictor(
            resilient, FaultInjector(profile, seed=BENCH_SEED + 2)
        )
        jobs = build_workload(dataset, n_jobs=N_JOBS, seed=7,
                              predictor=corrupting)
        degraded[profile_name] = resilient.degraded_fraction()
        for name in STRATEGIES:
            # Fresh identically-seeded injector per strategy: every
            # strategy faces the same hostile world.
            result = Scheduler(
                strategy_by_name(name, seed=11), ClusterState(),
                faults=FaultInjector(profile, seed=BENCH_SEED),
                retry=RetryPolicy(),
            ).run(list(jobs))
            info = result.extra["faults"]
            spans[(profile_name, name)] = makespan(result)
            rows.append(
                {
                    "profile": profile_name,
                    "strategy": name,
                    "makespan_hours": makespan(result) / 3600.0,
                    "goodput": goodput(result),
                    "retries": retry_count(result),
                    "node_failures": info["node_failures"],
                    "job_crashes": info["job_crashes"],
                    "completed": completed_fraction(result),
                }
            )
    return Frame.from_records(rows), spans, degraded


def _run_checkpoint_comparison(dataset, predictor):
    """Heavy profile, model strategy: restart-from-zero vs checkpoint."""
    jobs = build_workload(dataset, n_jobs=N_JOBS, seed=7,
                          predictor=predictor)
    rows = []
    results = {}
    for label, retry in (
        ("restart", RetryPolicy(checkpoint=False)),
        ("checkpoint", RetryPolicy(checkpoint=True)),
    ):
        result = Scheduler(
            strategy_by_name("model", seed=11), ClusterState(),
            faults=FaultInjector(FAULT_PROFILES["heavy"], seed=BENCH_SEED),
            retry=retry,
        ).run(list(jobs))
        results[label] = result
        rows.append(
            {
                "recovery": label,
                "makespan_hours": makespan(result) / 3600.0,
                "goodput": goodput(result),
                "wasted_node_hours": wasted_node_seconds(result) / 3600.0,
                "retries": retry_count(result),
            }
        )
    return Frame.from_records(rows), results


def test_strategies_under_failures(benchmark, bench_dataset,
                                   bench_predictor):
    frame, spans, degraded = benchmark.pedantic(
        lambda: _run_all(bench_dataset, bench_predictor),
        rounds=1, iterations=1,
    )
    note = ", ".join(
        f"{p}: {100 * degraded[p]:.1f}% degraded predictions"
        for p in PROFILES
    )
    report(
        "ext_fault_tolerance",
        f"Extension — strategies under fault injection ({N_JOBS} jobs)",
        frame,
        paper_notes="beyond the paper (perfect-world Fig. 7); " + note,
    )
    # Unlimited retries: every job completes despite the chaos.
    assert all(c == 1.0 for c in frame["completed"])
    # Failures cost real throughput under the heavy profile.
    heavy_goodput = [
        g for p, g in zip(frame["profile"], frame["goodput"]) if p == "heavy"
    ]
    assert all(g < 1.0 for g in heavy_goodput)
    # The model keeps its edge over blind placement even when nodes
    # fail, jobs crash, and a quarter of predictions run degraded.
    for profile in PROFILES:
        assert spans[(profile, "model")] < spans[(profile, "random")]
        assert spans[(profile, "model")] < spans[(profile, "round_robin")]
    # Degraded-prediction fraction roughly tracks the corruption rate.
    assert 0.0 < degraded["light"] < degraded["heavy"]


def test_checkpoint_recovers_goodput(benchmark, bench_dataset,
                                     bench_predictor):
    frame, results = benchmark.pedantic(
        lambda: _run_checkpoint_comparison(bench_dataset, bench_predictor),
        rounds=1, iterations=1,
    )
    report(
        "ext_fault_tolerance_checkpoint",
        f"Extension — checkpoint/restart under heavy faults ({N_JOBS} jobs)",
        frame,
        paper_notes="beyond the paper; heavy profile, model strategy",
    )
    by_label = dict(zip(frame["recovery"], frame["goodput"]))
    assert by_label["restart"] < 1.0
    assert by_label["checkpoint"] == 1.0
    assert wasted_node_seconds(results["checkpoint"]) == 0.0
    assert wasted_node_seconds(results["restart"]) > 0.0
