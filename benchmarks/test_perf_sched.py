"""Microbenchmark: fast scheduling engine + flat ensemble inference.

Times the optimized :class:`repro.sched.Scheduler` against the frozen
pre-optimization :class:`repro.sched._reference.ReferenceScheduler` on
a contended 10,000-job workload (verifying bit-identical schedules on
the way), and the flat vectorized ensemble predict against the per-tree
traversal it replaced (verifying exact equality).  Throughput numbers —
scheduling events/sec and prediction rows/sec — are recorded to
``benchmarks/BENCH_sched.json`` so the performance trajectory is
tracked from this PR onward.

Regression gate: the committed ``BENCH_sched.json`` is read *before*
being overwritten; if a measured speedup ratio fell to less than half
its committed value the test fails.  Gating on same-host speedup ratios
(optimized vs reference, measured back to back) rather than absolute
wall times keeps the gate meaningful across differently-sized CI hosts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.arch.machines import SYSTEM_ORDER
from repro.ml.boosting import GradientBoostedTrees
from repro.sched import ClusterState, Job, Scheduler, strategy_by_name
from repro.sched._reference import ReferenceScheduler

from conftest import record_bench

BENCH_PATH = Path(__file__).parent / "BENCH_sched.json"

N_JOBS = 10_000
#: Minimum fresh-measurement speedups (acceptance criteria floor for
#: the scheduler; the predict path must simply not be slower).
MIN_SCHED_SPEEDUP = 5.0
#: A measured ratio below half its committed value is a regression.
REGRESSION_FACTOR = 2.0


def _workload(n: int, seed: int = 7) -> list[Job]:
    rng = np.random.default_rng(seed)
    jobs = []
    t = 0.0
    for i in range(n):
        t += float(rng.exponential(4.0))
        rpv = rng.uniform(0.5, 3.0, size=len(SYSTEM_ORDER))
        base = float(rng.uniform(10.0, 600.0))
        jobs.append(Job(
            job_id=i, app="CoMD", uses_gpu=bool(rng.integers(2)),
            nodes_required=int(rng.integers(1, 16)),
            runtimes={s: base * float(r)
                      for s, r in zip(SYSTEM_ORDER, rpv)},
            submit_time=t,
            predicted_rpv=rpv * rng.uniform(0.9, 1.1, size=rpv.shape),
            true_rpv=rpv,
        ))
    return jobs


def _cluster() -> ClusterState:
    # Small enough that queues form and backfilling works hard.
    return ClusterState({s: 32 for s in SYSTEM_ORDER})


def _baseline() -> dict:
    if BENCH_PATH.exists():
        return json.loads(BENCH_PATH.read_text())
    return {}


def test_perf_sched_and_predict():
    results: dict = {}

    # --- scheduler -----------------------------------------------------
    jobs = _workload(N_JOBS)
    t0 = time.perf_counter()
    ref_result = ReferenceScheduler(
        strategy_by_name("model"), _cluster()).run(jobs)
    t_ref = time.perf_counter() - t0

    fast = Scheduler(strategy_by_name("model"), _cluster())
    t0 = time.perf_counter()
    fast_result = fast.run(jobs)
    t_fast = time.perf_counter() - t0

    # Bit-identical schedule before any throughput claims.
    assert np.array_equal(fast_result.job_ids, ref_result.job_ids)
    assert fast_result.machines == ref_result.machines
    assert np.array_equal(fast_result.start_times, ref_result.start_times)
    assert np.array_equal(fast_result.end_times, ref_result.end_times)
    assert fast_result.backfilled == ref_result.backfilled

    sched_speedup = t_ref / t_fast
    events_per_sec = fast.last_run_stats["sched_events"] / t_fast
    results["sched"] = {
        "n_jobs": N_JOBS,
        "strategy": "model",
        "events_per_sec": round(events_per_sec),
        "wall_s_fast": round(t_fast, 3),
        "wall_s_reference": round(t_ref, 3),
        "speedup_vs_reference": round(sched_speedup, 2),
    }

    # --- ensemble inference -------------------------------------------
    rng = np.random.default_rng(0)
    X = rng.normal(size=(2000, 12))
    Y = rng.normal(size=(2000, len(SYSTEM_ORDER)))
    gbt = GradientBoostedTrees(n_estimators=80, max_depth=5,
                               random_state=0).fit(X, Y)
    Xq = rng.normal(size=(20_000, 12))
    Xb = gbt.binner_.transform(Xq)

    def per_tree():
        pred = np.tile(gbt.base_score_, (Xb.shape[0], 1))
        for round_trees in gbt.trees_:
            for out, tree in enumerate(round_trees):
                pred[:, out] += tree.predict_binned(Xb)[:, 0]
        return pred

    old_pred = per_tree()
    t0 = time.perf_counter()
    old_pred = per_tree()
    t_old = time.perf_counter() - t0

    new_pred = gbt.predict_binned(Xb)  # warm the flat cache
    t0 = time.perf_counter()
    new_pred = gbt.predict_binned(Xb)
    t_new = time.perf_counter() - t0

    assert np.array_equal(old_pred, new_pred)

    predict_speedup = t_old / t_new
    rows_per_sec = Xb.shape[0] / t_new
    results["predict"] = {
        "n_rows": Xb.shape[0],
        "n_trees": sum(len(r) for r in gbt.trees_),
        "rows_per_sec": round(rows_per_sec),
        "wall_s_flat": round(t_new, 4),
        "wall_s_per_tree": round(t_old, 4),
        "speedup_vs_per_tree": round(predict_speedup, 2),
    }

    # --- gates ---------------------------------------------------------
    baseline = _baseline()
    record_bench(results)

    assert sched_speedup >= MIN_SCHED_SPEEDUP, (
        f"scheduler speedup {sched_speedup:.1f}x below the "
        f"{MIN_SCHED_SPEEDUP}x acceptance floor")
    assert predict_speedup >= 1.0, (
        f"flat predict is slower than the per-tree path "
        f"({predict_speedup:.2f}x)")

    for section, key in (("sched", "speedup_vs_reference"),
                         ("predict", "speedup_vs_per_tree")):
        committed = baseline.get(section, {}).get(key)
        if committed is None:
            continue
        measured = results[section][key]
        assert measured * REGRESSION_FACTOR >= committed, (
            f"{section}.{key} regressed >{REGRESSION_FACTOR}x: "
            f"measured {measured} vs committed baseline {committed}")
