"""Wall-time benchmark of the parallel, cached generation pipeline.

Measures ``generate_dataset`` end to end in four configurations —
sequential, ``jobs=4`` process pool, cold content-addressed cache, and
warm cache — verifying on the way that every configuration yields the
identical frame (the determinism contract), and records wall times and
speedups over the sequential baseline.

Parallel speedup is bounded by the host's core count (recorded in the
results table): on a single-core container the pool can only break
even, while the warm-cache path skips the simulator entirely and is
core-count-independent.
"""

from __future__ import annotations

import os
import time

from conftest import BENCH_SEED, INPUTS_PER_APP, report

from repro.dataset.generate import generate_dataset
from repro.dataset.store import ShardCache
from repro.frame import Frame


def _timed(**kwargs):
    start = time.perf_counter()
    dataset = generate_dataset(inputs_per_app=INPUTS_PER_APP,
                               seed=BENCH_SEED, **kwargs)
    return dataset, time.perf_counter() - start


def test_perf_parallel_pipeline(benchmark, tmp_path):
    cache = ShardCache(tmp_path / "shards")

    sequential, t_seq = _timed()
    parallel, t_par = _timed(jobs=4)
    cold, t_cold = _timed(jobs=4, cache=cache)
    # The warm-cache pass is the headline number; let pytest-benchmark
    # time it too so it shows up in --benchmark-only summaries.
    warm, t_warm = benchmark.pedantic(
        lambda: _timed(jobs=4, cache=cache), rounds=1, iterations=1,
    )

    # Speed must never change results.
    assert parallel.frame == sequential.frame
    assert cold.frame == sequential.frame
    assert warm.frame == sequential.frame
    assert cache.stats.hits and not cache.stats.evictions

    rows = sequential.num_rows
    configs = [
        ("sequential (jobs=1)", t_seq),
        ("parallel (jobs=4)", t_par),
        ("cold cache (jobs=4)", t_cold),
        ("warm cache", t_warm),
    ]
    frame = Frame({
        "config": [name for name, _ in configs],
        "rows": [rows] * len(configs),
        "seconds": [t for _, t in configs],
        "speedup_vs_sequential": [t_seq / t for _, t in configs],
        "host_cores": [os.cpu_count()] * len(configs),
    })
    report(
        "perf_parallel_pipeline",
        "Dataset-generation pipeline wall time "
        f"({INPUTS_PER_APP} inputs/app)",
        frame,
        paper_notes="extension: parallel+cached pipeline; identical "
                    "frames verified across all configurations",
    )

    # The warm cache must beat regenerating, decisively.
    assert t_warm < t_seq
