"""Figure 7: makespan per machine-assignment strategy.

Paper: Model-based assignment gives the lowest makespan (0.87 h for the
50,000-job workload), followed by User+RR, then Round-Robin and Random
— "reducing makespan by up to 20%".
"""

from __future__ import annotations

import os

from repro.frame import Frame
from repro.sched import ReplicaSpec, makespan, run_replicas
from repro.workloads import build_workload

from conftest import PAPER_SCALE, report

#: Jobs in the scheduling workload (paper: 50,000).
N_JOBS = 50_000 if PAPER_SCALE else 10_000
STRATEGIES = ("round_robin", "random", "user_rr", "model", "oracle")
#: Worker processes for the per-strategy replicas.  Each strategy's
#: simulation is independent, so sharding them is a pure wall-time knob
#: (run_replicas merges in spec order, bit-identical to sequential).
WORKERS = int(os.environ.get("REPRO_FIG7_WORKERS", "1"))


def _run_all(dataset, predictor):
    jobs = build_workload(dataset, n_jobs=N_JOBS, seed=7,
                          predictor=predictor)
    specs = [ReplicaSpec(strategy=name, seed=11, label=name)
             for name in STRATEGIES]
    replica_results = run_replicas(list(jobs), specs, workers=WORKERS)
    rows = []
    results = {}
    for name, result in zip(STRATEGIES, replica_results):
        results[name] = result
        rows.append(
            {
                "strategy": name,
                "makespan_hours": makespan(result) / 3600.0,
                "backfilled": result.backfilled,
            }
        )
    return Frame.from_records(rows), results


def test_fig7_makespan(benchmark, bench_dataset, bench_predictor):
    frame, _ = benchmark.pedantic(
        lambda: _run_all(bench_dataset, bench_predictor),
        rounds=1, iterations=1,
    )
    spans = dict(zip(frame["strategy"], frame["makespan_hours"]))
    frame = frame.with_column(
        "reduction_vs_random",
        [1 - s / spans["random"] for s in frame["makespan_hours"]],
    )
    report(
        "fig7_makespan",
        f"Fig. 7 — Makespan per assignment strategy ({N_JOBS} jobs)",
        frame,
        paper_notes="paper: Model best (0.87 h at 50k jobs), then User+RR, "
                    "then RR and Random; up to 20% reduction",
    )
    # Shape: model better than the blind strategies and not worse than
    # User+RR beyond noise.  Makespan is floored by the longest job's
    # best achievable finish, so Model and User+RR can tie when that
    # job is GPU-capable (both place it on a GPU system); the paper's
    # decisive separation shows up in Fig. 8's slowdown metric.
    assert spans["model"] <= spans["user_rr"] * 1.05
    assert spans["model"] < spans["round_robin"]
    assert spans["model"] < spans["random"]
