"""Microbenchmark: the serving stack's micro-batching payoff.

Two numbers define the service's performance story:

* ``coalesce_speedup`` — rows/sec through the :class:`MicroBatcher`
  (concurrent submits riding the vectorized predict) over rows/sec of
  the same predictions issued as sequential single-row calls.  This is
  the ratio micro-batching exists to win, measured back to back on the
  same host, so it gates cleanly across differently-sized CI machines.
* ``requests_per_sec`` (with p50/p99 latency) — end-to-end HTTP
  throughput of the full service under the deterministic load driver.

Both are recorded to ``benchmarks/BENCH_serve.json``.  Regression
gate: the committed file is read *before* being overwritten; a fresh
``coalesce_speedup`` or ``requests_per_sec`` below half its committed
value fails the run (same REGRESSION_FACTOR discipline as
``BENCH_sched.json``).  Latency percentiles are informational — they
track host speed, not code health.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.resilience import ResilientPredictor
from repro.serve import MicroBatcher, PredictionService, run_load
from repro.serve.model_manager import ActiveModel, ModelManager

BENCH_PATH = Path(__file__).parent / "BENCH_serve.json"

N_ROWS = 2048
N_HTTP_REQUESTS = 150
#: Fresh-measurement floor: batching must beat row-at-a-time by at
#: least this much or the coalescer is not earning its complexity.
MIN_COALESCE_SPEEDUP = 2.0
#: A measured ratio below half its committed value is a regression.
REGRESSION_FACTOR = 2.0


def _baseline() -> dict:
    if BENCH_PATH.exists():
        return json.loads(BENCH_PATH.read_text())
    return {}


class _PreloadedManager(ModelManager):
    """A ModelManager pinned to an in-memory model (no registry I/O),
    so the benchmark times the serving stack, not pickle loads."""

    def __init__(self, predictor, dataset):
        super().__init__("/nonexistent-registry")

        class _FakeRun:
            path = Path("/dev/null")
            config_hash = "bench" + "0" * 59

        resilient = ResilientPredictor.from_training(predictor, dataset)
        self._active = ActiveModel(predictor, resilient, _FakeRun())


def test_perf_serve(bench_dataset, bench_predictor):
    results: dict = {}
    X = bench_dataset.X()[:N_ROWS]
    rows = [np.ascontiguousarray(row) for row in X]

    # --- sequential single-row predicts (the no-batching world) -------
    t0 = time.perf_counter()
    sequential = [bench_predictor.predict(row[None, :])[0] for row in rows]
    sequential_s = time.perf_counter() - t0

    # --- the same rows through the coalescer ---------------------------
    def flush(items):
        return list(bench_predictor.predict(np.vstack(items)))

    async def batched_run():
        batcher = MicroBatcher(flush, max_batch=32, max_delay_s=0.05)
        t1 = time.perf_counter()
        out = await asyncio.gather(*(batcher.submit(row) for row in rows))
        return out, time.perf_counter() - t1

    batched, batched_s = asyncio.run(batched_run())
    # Bit-identicality holds at benchmark scale too (tree traversal is
    # batch-size invariant) — a speedup that changed answers is a bug.
    for a, b in zip(sequential, batched):
        assert np.array_equal(a, b)

    coalesce_speedup = sequential_s / batched_s
    results["serve_rows"] = N_ROWS
    results["sequential_rows_per_s"] = round(N_ROWS / sequential_s)
    results["batched_rows_per_s"] = round(N_ROWS / batched_s)
    results["coalesce_speedup"] = round(coalesce_speedup, 2)

    # --- end-to-end HTTP throughput ------------------------------------
    manager = _PreloadedManager(bench_predictor, bench_dataset)
    service = PredictionService(manager, max_batch=32,
                                batch_deadline_s=0.002)
    payloads = [
        {"features": [float(v) for v in X[i % N_ROWS]]}
        for i in range(N_HTTP_REQUESTS)
    ]

    async def http_run():
        host, port = await service.start(port=0)
        try:
            return await run_load(host, port, payloads,
                                  rate_per_second=0.0)
        finally:
            await service.stop()

    report = asyncio.run(http_run())
    assert report.ok == N_HTTP_REQUESTS, report.to_dict()
    results["http_requests"] = N_HTTP_REQUESTS
    results["requests_per_sec"] = round(report.requests_per_sec, 1)
    results["p50_ms"] = round(report.percentile_ms(50), 3)
    results["p99_ms"] = round(report.percentile_ms(99), 3)

    # --- gates ----------------------------------------------------------
    baseline = _baseline()
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print("\n" + json.dumps(results, indent=2))

    assert coalesce_speedup >= MIN_COALESCE_SPEEDUP, (
        f"micro-batching speedup {coalesce_speedup:.2f}x below the "
        f"{MIN_COALESCE_SPEEDUP}x floor"
    )
    for key in ("coalesce_speedup", "requests_per_sec"):
        committed = baseline.get(key)
        if committed:
            assert results[key] >= committed / REGRESSION_FACTOR, (
                f"{key} regressed: {results[key]} vs committed "
                f"{committed} (allowed floor "
                f"{committed / REGRESSION_FACTOR:.2f})"
            )
