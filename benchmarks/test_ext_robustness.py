"""Extension benchmark: Fig. 2 robustness across dataset seeds.

Single-split comparisons hide variance; this study regenerates the
dataset under three seeds and reports mean +- std per model, asserting
the orderings the reproduction treats as solid (tree models beat linear
beats mean) with gaps that exceed the measured spread.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import robustness_study

from conftest import report

LIGHT = {"n_estimators": 150, "max_depth": 8}


def test_ext_robustness(benchmark):
    frame = benchmark.pedantic(
        lambda: robustness_study(dataset_seeds=(0, 1, 2), inputs_per_app=6,
                                 model_kwargs=LIGHT),
        rounds=1, iterations=1,
    )
    report(
        "ext_robustness",
        "Extension — Fig. 2 metrics across three dataset seeds (mean +- std)",
        frame,
        paper_notes="orderings asserted only where gaps exceed seed spread",
    )
    rows = {str(m): (mu, sd, sm, ss) for m, mu, sd, sm, ss in zip(
        frame["model"], frame["mae_mean"], frame["mae_std"],
        frame["sos_mean"], frame["sos_std"],
    )}
    # Tree models beat linear by far more than the spread...
    gap = rows["linear"][0] - rows["xgboost"][0]
    assert gap > 3 * (rows["linear"][1] + rows["xgboost"][1])
    # ...and linear beats mean on MAE beyond spread.
    gap2 = rows["mean"][0] - rows["linear"][0]
    assert gap2 > rows["mean"][1] + rows["linear"][1]
    # SOS: tree models decisively above non-tree models.
    assert rows["xgboost"][2] > 2 * rows["linear"][2]
