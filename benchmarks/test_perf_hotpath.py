"""Microbenchmark: the perf-campaign hot paths, gated by speedup ratios.

Covers the three optimizations the self-profiler (``repro perf``)
pointed at, each verified for exactness before any throughput claim:

* **native tree routing** — the compiled ``route_leaves`` kernel vs the
  numpy fallback inside ``FlatEnsemble.predict_leaves`` (bit-identical
  leaves, then the speedup ratio);
* **uint8 packed predict** — ``CrossArchPredictor.predict_packed`` on a
  pre-packed matrix vs ``predict`` re-binning floats every call
  (bit-identical predictions);
* **sharded replicas** — ``run_replicas`` across processes vs inline,
  pinned bit-identical through ``schedule_digest``.

Ratios land in ``benchmarks/BENCH_hotpath.json``.  Like
``BENCH_sched.json``, the committed file is read before being
overwritten and a measured ratio below half its committed value fails
the run — ratio gates survive differently-sized CI hosts where absolute
wall-time gates cannot.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import native
from repro.arch.machines import SYSTEM_ORDER
from repro.core.predictor import CrossArchPredictor
from repro.dataset.generate import generate_dataset
from repro.ml.boosting import GradientBoostedTrees
from repro.sched import Job, ReplicaSpec, run_replicas, schedule_digest

BENCH_PATH = Path(__file__).parent / "BENCH_hotpath.json"

#: A measured ratio below half its committed value is a regression.
REGRESSION_FACTOR = 2.0
#: Ratio keys the gate checks (section, key).
GATED = (("native_routing", "speedup_vs_numpy"),
         ("packed_predict", "speedup_vs_unpacked"))


def _baseline() -> dict:
    if BENCH_PATH.exists():
        return json.loads(BENCH_PATH.read_text())
    return {}


def _replica_jobs(n: int, seed: int = 7) -> list[Job]:
    rng = np.random.default_rng(seed)
    jobs = []
    t = 0.0
    for i in range(n):
        t += float(rng.exponential(4.0))
        rpv = rng.uniform(0.5, 3.0, size=len(SYSTEM_ORDER))
        base = float(rng.uniform(10.0, 600.0))
        jobs.append(Job(
            job_id=i, app="CoMD", uses_gpu=bool(rng.integers(2)),
            nodes_required=int(rng.integers(1, 16)),
            runtimes={s: base * float(r)
                      for s, r in zip(SYSTEM_ORDER, rpv)},
            submit_time=t,
            predicted_rpv=rpv * rng.uniform(0.9, 1.1, size=rpv.shape),
            true_rpv=rpv,
        ))
    return jobs


def test_perf_hotpath():
    results: dict = {}

    # --- native routing kernel vs numpy fallback -----------------------
    rng = np.random.default_rng(0)
    X = rng.normal(size=(2000, 12))
    Y = rng.normal(size=(2000, 4))
    gbt = GradientBoostedTrees(n_estimators=80, max_depth=5,
                               random_state=0).fit(X, Y)
    Xb = gbt.binner_.transform(rng.normal(size=(20_000, 12)))
    flat = gbt._flat_ensemble()

    flat.predict_leaves(Xb)  # warm (compiles the kernel on first use)
    t0 = time.perf_counter()
    leaves_fast = flat.predict_leaves(Xb)
    t_fast = time.perf_counter() - t0

    saved_state = native._state
    native._state = (None, "disabled for fallback timing")
    try:
        flat.predict_leaves(Xb)  # warm the numpy path too
        t0 = time.perf_counter()
        leaves_numpy = flat.predict_leaves(Xb)
        t_numpy = time.perf_counter() - t0
    finally:
        native._state = saved_state

    assert np.array_equal(leaves_fast, leaves_numpy), (
        "native kernel routes different leaves than the numpy path")
    results["native_routing"] = {
        "available": native.available(),
        "n_rows": Xb.shape[0],
        "n_trees": flat.n_trees,
        "wall_s_native": round(t_fast, 4),
        "wall_s_numpy": round(t_numpy, 4),
        "speedup_vs_numpy": round(t_numpy / t_fast, 2),
    }

    # --- uint8 packed predict vs float re-binning ----------------------
    dataset = generate_dataset(inputs_per_app=3, seed=0)
    predictor = CrossArchPredictor.train(dataset, n_estimators=40)
    Xf = dataset.frame.to_matrix(list(predictor.feature_columns))
    Xf = np.tile(Xf, (4, 1))
    packed = predictor.pack(Xf)
    assert packed.dtype == np.uint8

    assert np.array_equal(predictor.predict_packed(packed),
                          predictor.predict(Xf)), (
        "packed predictions differ from the float path")
    predictor.predict(Xf)
    t0 = time.perf_counter()
    for _ in range(3):
        predictor.predict(Xf)
    t_float = (time.perf_counter() - t0) / 3
    predictor.predict_packed(packed)
    t0 = time.perf_counter()
    for _ in range(3):
        predictor.predict_packed(packed)
    t_packed = (time.perf_counter() - t0) / 3
    results["packed_predict"] = {
        "n_rows": Xf.shape[0],
        "wall_s_unpacked": round(t_float, 4),
        "wall_s_packed": round(t_packed, 4),
        "speedup_vs_unpacked": round(t_float / t_packed, 2),
    }

    # --- sharded replicas: bit-identical ordered merge -----------------
    jobs = _replica_jobs(1500)
    specs = [ReplicaSpec(strategy=s, seed=11,
                         node_counts={m: 32 for m in SYSTEM_ORDER})
             for s in ("round_robin", "random", "user_rr", "model")]
    t0 = time.perf_counter()
    sequential = run_replicas(jobs, specs, workers=1)
    t_seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    sharded = run_replicas(jobs, specs, workers=2)
    t_shard = time.perf_counter() - t0
    digests_seq = [schedule_digest(r) for r in sequential]
    digests_shard = [schedule_digest(r) for r in sharded]
    assert digests_seq == digests_shard, (
        "sharded replica results differ from the sequential merge")
    results["replica_shard"] = {
        "n_jobs": len(jobs),
        "n_replicas": len(specs),
        "wall_s_sequential": round(t_seq, 3),
        "wall_s_sharded": round(t_shard, 3),
        "digest": digests_seq[0][:16],
    }

    # --- record + ratio gates ------------------------------------------
    baseline = _baseline()
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")

    for section, key in GATED:
        if section == "native_routing" and not results[section]["available"]:
            continue  # no compiler on this host: the ratio is meaningless
        committed = baseline.get(section, {}).get(key)
        if committed is None:
            continue
        measured = results[section][key]
        assert measured * REGRESSION_FACTOR >= committed, (
            f"{section}.{key} regressed >{REGRESSION_FACTOR}x: "
            f"measured {measured} vs committed baseline {committed}")
