"""Figure 8: average bounded slowdown per machine-assignment strategy.

Paper: Model-based assignment has the lowest average bounded slowdown,
with the same strategy ordering as the makespan result.
"""

from __future__ import annotations

from repro.frame import Frame
from repro.sched import Scheduler, average_bounded_slowdown, strategy_by_name
from repro.sched.machines import ClusterState
from repro.workloads import build_workload

from conftest import PAPER_SCALE, report

N_JOBS = 50_000 if PAPER_SCALE else 10_000
STRATEGIES = ("round_robin", "random", "user_rr", "model", "oracle")


def _run_all(dataset, predictor):
    jobs = build_workload(dataset, n_jobs=N_JOBS, seed=7,
                          predictor=predictor)
    rows = []
    for name in STRATEGIES:
        result = Scheduler(
            strategy_by_name(name, seed=11), ClusterState()
        ).run(list(jobs))
        rows.append(
            {
                "strategy": name,
                "avg_bounded_slowdown": average_bounded_slowdown(result),
            }
        )
    return Frame.from_records(rows)


def test_fig8_bounded_slowdown(benchmark, bench_dataset, bench_predictor):
    frame = benchmark.pedantic(
        lambda: _run_all(bench_dataset, bench_predictor),
        rounds=1, iterations=1,
    )
    report(
        "fig8_slowdown",
        f"Fig. 8 — Average bounded slowdown per strategy ({N_JOBS} jobs)",
        frame,
        paper_notes="paper: Model-based lowest; same ordering as Fig. 7",
    )
    slow = dict(zip(frame["strategy"], frame["avg_bounded_slowdown"]))
    assert slow["model"] <= slow["user_rr"] + 1e-9
    assert slow["model"] < slow["round_robin"]
    assert slow["model"] < slow["random"]
    assert (frame.to_matrix(["avg_bounded_slowdown"]) >= 1.0).all()
